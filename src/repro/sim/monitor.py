"""Measurement helpers: counters, latency samples and time series.

The benchmark harness reads these to print the paper's figures; the
fault-tolerance experiment (Fig. 11) uses :class:`RateSeries` to bucket
served operations per second.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Tally", "RateSeries", "summary_stats"]


class Counter:
    """A named monotonically increasing byte/op counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative increment {amount}")
        self.value += amount

    def reset(self) -> int:
        old, self.value = self.value, 0
        return old

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe state for :class:`~repro.obs.MetricsRegistry` exports."""
        return {"type": "counter", "value": self.value}

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name!r}, {self.value})"


class Tally:
    """Accumulates scalar samples (latencies) with O(1) memory for moments
    and optional retention of raw samples for percentiles."""

    def __init__(self, name: str = "", keep_samples: bool = True):
        self.name = name
        self.count = 0
        self._sum = 0.0
        self._sumsq = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._samples: Optional[List[float]] = [] if keep_samples else None

    def observe(self, value: float) -> None:
        self.count += 1
        self._sum += value
        self._sumsq += value * value
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        if self._samples is not None:
            self._samples.append(value)

    @property
    def mean(self) -> float:
        return self._sum / self.count if self.count else math.nan

    @property
    def stdev(self) -> float:
        # Empty tallies report nan across the board (mean/min/max do);
        # a lone 0.0 here made summary_stats([]) mix nan and 0.0.
        if self.count == 0:
            return math.nan
        if self.count == 1:
            return 0.0
        var = (self._sumsq - self._sum * self._sum / self.count) / (self.count - 1)
        return math.sqrt(max(var, 0.0))

    @property
    def minimum(self) -> float:
        return self._min if self.count else math.nan

    @property
    def maximum(self) -> float:
        return self._max if self.count else math.nan

    def percentile(self, q: float) -> float:
        """q in [0, 100]; requires keep_samples=True."""
        if self._samples is None:
            raise ValueError(f"tally {self.name!r} does not retain samples")
        if not self._samples:
            return math.nan
        data = sorted(self._samples)
        if len(data) == 1:
            return data[0]
        pos = (q / 100.0) * (len(data) - 1)
        lo = int(math.floor(pos))
        hi = min(lo + 1, len(data) - 1)
        frac = pos - lo
        return data[lo] * (1 - frac) + data[hi] * frac

    @property
    def samples(self) -> Sequence[float]:
        if self._samples is None:
            raise ValueError(f"tally {self.name!r} does not retain samples")
        return tuple(self._samples)

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe state (nan becomes None so strict JSON parsers work)."""
        def safe(x: float):
            return None if math.isnan(x) else x

        out: Dict[str, object] = {
            "type": "tally",
            "count": self.count,
            "mean": safe(self.mean),
            "stdev": safe(self.stdev),
            "min": safe(self.minimum),
            "max": safe(self.maximum),
        }
        if self._samples is not None:
            out["p50"] = safe(self.percentile(50))
            out["p99"] = safe(self.percentile(99))
        return out


class RateSeries:
    """Buckets event occurrences into fixed-width time bins (ops/second)."""

    def __init__(self, bin_width: float = 1.0, name: str = ""):
        if bin_width <= 0:
            raise ValueError(f"bin width must be positive, got {bin_width}")
        self.name = name
        self.bin_width = bin_width
        self._bins: Dict[int, int] = {}

    def record(self, when: float, count: int = 1) -> None:
        idx = int(when // self.bin_width)
        self._bins[idx] = self._bins.get(idx, 0) + count

    def series(self, t_end: Optional[float] = None) -> List[Tuple[float, float]]:
        """Return [(bin_start_time, rate_per_second), ...] densely through
        ``t_end`` — or further, if events were recorded after ``t_end``
        (late bins used to be silently dropped, hiding recorded data)."""
        if not self._bins and t_end is None:
            return []
        last = int(t_end // self.bin_width) if t_end is not None else -1
        if self._bins:
            last = max(last, max(self._bins))
        out = []
        for idx in range(0, last + 1):
            out.append((idx * self.bin_width, self._bins.get(idx, 0) / self.bin_width))
        return out

    def total(self) -> int:
        return sum(self._bins.values())

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe state: bin index -> event count (sparse, stringly keyed)."""
        return {
            "type": "rate",
            "bin_width": self.bin_width,
            "total": self.total(),
            "bins": {str(idx): self._bins[idx] for idx in sorted(self._bins)},
        }


def summary_stats(values: Sequence[float]) -> Dict[str, float]:
    """Mean/std/min/max of a sequence (empty-safe, for report tables)."""
    t = Tally(keep_samples=False)
    for v in values:
        t.observe(v)
    return {
        "mean": t.mean,
        "stdev": t.stdev,
        "min": t.minimum,
        "max": t.maximum,
        "count": t.count,
    }
