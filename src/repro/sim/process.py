"""Coroutine processes for the simulation kernel.

A *process* wraps a Python generator.  The generator yields
:class:`~repro.sim.kernel.Event` objects; the process suspends until the
yielded event triggers, then resumes with the event's value (or with the
event's exception thrown into the generator, so protocol code can use
ordinary ``try/except``).

Processes are themselves events: waiting on a process means waiting for it
to return, and its :attr:`value` is the generator's return value.  This is
how protocol state machines compose (e.g. a put operation spawns one
process per secondary replica and joins them with ``AllOf``).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .kernel import Event, SimulationError, Simulator, URGENT

__all__ = ["Process", "Interrupt"]


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupt ``cause`` is available as ``exc.cause``.  Used throughout
    the storage protocols to model request timeouts and node failures.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class _Started:
    """Singleton stand-in for the initial wake-up event of every process.

    ``_resume`` only reads ``ok`` / ``value`` (and ``_defused`` on the
    failure path), so one immutable shared instance replaces the per-process
    ``Event`` + callback-list allocation the old init path paid.
    """

    __slots__ = ()
    ok = True
    value = None
    _ok = True
    _value = None
    _defused = True


_STARTED = _Started()


class Process(Event):
    """A running generator, resumable by the event loop."""

    __slots__ = ("_gen", "_target", "name")

    def __init__(self, sim: Simulator, generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"process() needs a generator, got {type(generator).__name__}"
            )
        super().__init__(sim)
        self._gen = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Live-process accounting drives the `_Call` pool cap: at cluster
        # scale thousands of concurrent processes each keep a deferred call
        # in flight, so the cap tracks 2x the high-water mark of live
        # processes (never shrinking, floor 256 from Simulator.__init__).
        sim._live_procs += 1
        cap = sim._live_procs * 2
        if cap > sim._call_pool_cap:
            sim._call_pool_cap = cap
        # First resume happens on an urgent same-time call so that process
        # bodies start deterministically before ordinary events at `now`.
        sim._schedule_call(0.0, self._resume, _STARTED, priority=URGENT)

    # -- state -------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting on (if suspended)."""
        return self._target

    # -- control -----------------------------------------------------------
    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        twice before it resumes queues both interrupts (delivered in order).
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        ev = Event(self.sim)
        ev._ok = False
        ev._value = Interrupt(cause)
        ev._defused = True
        ev.add_callback(self._resume)
        self.sim._schedule_event(ev, URGENT)

    # -- engine ------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self._value is not Event._PENDING:
            # Process already finished (e.g. interrupted after completion
            # raced with a pending wakeup): drop stale wakeups, but re-raise
            # unhandled failures of the stale event.
            if event._ok is False and not event._defused:
                raise event._value
            return

        # Detach from the old target: an interrupt must not leave a stale
        # callback that would resume us a second time.
        if self._target is not None and self._target is not event:
            self._target.remove_callback(self._resume)
        self._target = None

        tr = self.sim.tracer
        if tr is not None and tr.verbose:
            tr.instant("wake", "proc", node=self.name)

        send = self._gen.send
        while True:
            try:
                if event._ok:
                    next_ev = send(event._value)
                else:
                    event._defused = True
                    next_ev = self._gen.throw(event._value)
            except StopIteration as stop:
                self.sim._live_procs -= 1
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self.sim._live_procs -= 1
                self.fail(exc)
                return

            if not isinstance(next_ev, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded {next_ev!r}, expected an Event"
                )
                try:
                    self._gen.throw(exc)
                except StopIteration as stop:
                    self.sim._live_procs -= 1
                    self.succeed(stop.value)
                except BaseException as err:
                    self.sim._live_procs -= 1
                    self.fail(err)
                return

            if next_ev._processed:
                # Already settled: loop and deliver synchronously.
                event = next_ev
                continue
            self._target = next_ev
            next_ev.add_callback(self._resume)
            return

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"
