"""Deterministic hierarchical random streams.

Every stochastic component (workload generators, loss injection, handoff
selection, ...) draws from its own named stream derived from a single root
seed.  Adding a new consumer therefore never perturbs the draws seen by
existing consumers — a property the regression tests rely on.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory of named, independent :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0):
        if not isinstance(seed, int):
            raise TypeError(f"seed must be int, got {type(seed).__name__}")
        self.seed = seed
        self._streams: dict = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The per-stream seed is ``sha256(root_seed || name)`` so streams are
        independent of creation order.
        """
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            gen = np.random.Generator(np.random.PCG64(int.from_bytes(digest[:8], "little")))
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngRegistry":
        """Derive a child registry (e.g. one per simulated node)."""
        digest = hashlib.sha256(f"{self.seed}:spawn:{name}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "little"))
