"""Deterministic discrete-event simulation kernel.

Public surface:

* :class:`Simulator` — the event loop.
* :class:`Event`, :class:`Timeout`, :func:`AnyOf`, :func:`AllOf` — waitables.
* :class:`Process`, :class:`Interrupt` — generator coroutines.
* :class:`Store`, :class:`Resource` — queues and counted resources.
* :class:`RngRegistry` — named deterministic random streams.
* :class:`Counter`, :class:`Tally`, :class:`RateSeries` — measurement.
"""

from .kernel import (
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    Event,
    NORMAL,
    Simulator,
    SimulationError,
    StopSimulation,
    Timeout,
    URGENT,
)
from .monitor import Counter, RateSeries, Tally, summary_stats
from .primitives import Resource, ResourceRequest, Store
from .process import Interrupt, Process
from .rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "Counter",
    "Event",
    "Interrupt",
    "NORMAL",
    "Process",
    "RateSeries",
    "Resource",
    "ResourceRequest",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "StopSimulation",
    "Store",
    "Tally",
    "Timeout",
    "URGENT",
    "summary_stats",
]
