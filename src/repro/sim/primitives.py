"""Shared-state primitives built on the kernel: queues and resources.

These are the building blocks for NICs (FIFO packet queues), links
(capacity-1 resources serializing transmissions), and disks (capacity-1
resources with service-time modeling).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional

from .kernel import Event, SimulationError, Simulator

__all__ = ["Store", "Resource", "ResourceRequest"]


class _StoreGet(Event):
    __slots__ = ("filter",)

    def __init__(self, sim: Simulator, filter: Optional[Callable[[Any], bool]]):
        super().__init__(sim)
        self.filter = filter


class Store:
    """An unbounded FIFO of items with blocking ``get``.

    ``put`` never blocks (the network model applies backpressure at links,
    not at host queues); ``get`` returns an event that triggers when an item
    is available.  An optional filter ``get(lambda item: ...)`` supports
    selective receive (used by transport-layer demultiplexing).
    """

    def __init__(self, sim: Simulator, name: str = "store"):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: List[_StoreGet] = []

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of queued items (diagnostics only)."""
        return tuple(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the first matching waiter, if any."""
        for i, getter in enumerate(self._getters):
            if getter.triggered:
                continue
            if getter.filter is None or getter.filter(item):
                del self._getters[i]
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> Event:
        """Return an event yielding the next (matching) item."""
        ev = _StoreGet(self.sim, filter)
        for i, item in enumerate(self._items):
            if filter is None or filter(item):
                del self._items[i]
                ev.succeed(item)
                return ev
        self._getters.append(ev)
        return ev

    def cancel(self, get_event: Event) -> None:
        """Withdraw an unfired ``get`` (e.g. its process was interrupted)."""
        try:
            self._getters.remove(get_event)  # type: ignore[arg-type]
        except ValueError:
            pass

    def clear(self) -> int:
        """Drop all queued items; returns how many were dropped."""
        n = len(self._items)
        self._items.clear()
        return n


class ResourceRequest(Event):
    """Pending acquisition of a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, sim: Simulator, resource: "Resource"):
        super().__init__(sim)
        self.resource = resource

    def release(self) -> None:
        self.resource.release(self)


class Resource:
    """A counted resource with FIFO admission (capacity-1 ⇒ a mutex).

    Usage from a process::

        req = link.resource.request()
        yield req
        try:
            ... hold the resource ...
        finally:
            req.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._users: List[ResourceRequest] = []
        self._queue: Deque[ResourceRequest] = deque()

    @property
    def in_use(self) -> int:
        return len(self._users)

    @property
    def queued(self) -> int:
        return len(self._queue)

    def request(self) -> ResourceRequest:
        req = ResourceRequest(self.sim, self)
        if len(self._users) < self.capacity:
            self._users.append(req)
            req.succeed()
        else:
            self._queue.append(req)
        return req

    def release(self, req: ResourceRequest) -> None:
        """Release a granted slot (or cancel a queued request)."""
        try:
            self._users.remove(req)
        except ValueError:
            # Not granted yet: cancel from the waiting queue if present.
            try:
                self._queue.remove(req)
            except ValueError:
                pass
            return
        while self._queue and len(self._users) < self.capacity:
            nxt = self._queue.popleft()
            self._users.append(nxt)
            nxt.succeed()
