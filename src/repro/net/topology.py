"""Devices, the network container, and topology builders.

The evaluation platform (§6) is a single OpenFlow rack switch with 30
1 Gbps hosts; the deployed variant (§5.1) adds a client-side Open vSwitch
per client because the hardware switch cannot rewrite headers.  Both are
built here.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..sim import Simulator
from .link import GBPS, Link, Port
from .packet import Packet

__all__ = ["Device", "Network"]


class Device:
    """Anything with ports: hosts and switches derive from this."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.ports: Dict[int, Port] = {}
        self._next_port = 1

    def new_port(self) -> Port:
        port = Port(self, self._next_port)
        self.ports[self._next_port] = port
        self._next_port += 1
        return port

    def handle_packet(self, packet: Packet, in_port: Port) -> None:  # pragma: no cover
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name}>"


class Network:
    """Container tracking every device and link; owns global byte counters."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.devices: Dict[str, Device] = {}
        self.links: List[Link] = []

    def register(self, device: Device) -> Device:
        if device.name in self.devices:
            raise ValueError(f"duplicate device name {device.name!r}")
        self.devices[device.name] = device
        return device

    def connect(
        self,
        a: Device,
        b: Device,
        bandwidth_bps: float = GBPS,
        latency_s: float = 50e-6,
    ) -> Link:
        """Create a duplex link between fresh ports on ``a`` and ``b``."""
        link = Link(self.sim, a.new_port(), b.new_port(), bandwidth_bps, latency_s)
        self.links.append(link)
        return link

    def link_between(self, a: Device, b: Device) -> Optional[Link]:
        for link in self.links:
            ends = {link.a.device, link.b.device}
            if ends == {a, b}:
                return link
        return None

    # -- measurement (Figs 6-7) ------------------------------------------------
    def total_link_bytes(self) -> int:
        """Sum of bytes transmitted over every channel — the paper's
        "total network link load" metric (Fig 6)."""
        return sum(link.total_bytes for link in self.links)

    def reset_link_counters(self) -> None:
        for link in self.links:
            link.reset_counters()

    def host_io_bytes(self, device: Device) -> int:
        """Bytes sent + received on ``device``'s access link(s) — the Fig 7
        per-node storage-load metric."""
        total = 0
        for link in self.links:
            if link.a.device is device or link.b.device is device:
                total += link.total_bytes
        return total
