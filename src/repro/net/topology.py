"""Devices, the network container, and topology builders.

The evaluation platform (§6) is a single OpenFlow rack switch with 30
1 Gbps hosts; the deployed variant (§5.1) adds a client-side Open vSwitch
per client because the hardware switch cannot rewrite headers.  Both are
built here, plus the leaf–spine fabric (DESIGN.md §5h) that scales the
same vring machinery past one rack: each rack's hosts hang off a leaf
switch, every leaf connects to every spine, and uplink choice is a
deterministic hash over flow identifiers (ECMP without per-flow state).
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List, Optional, Tuple

from ..sim import Simulator
from .link import GBPS, Link, Port
from .packet import Packet

__all__ = ["Device", "Network", "LeafSpineFabric", "ecmp_index"]


def ecmp_index(n: int, *keys) -> int:
    """Deterministic ECMP choice: hash ``keys`` into ``[0, n)``.

    Uses crc32 over the stringified keys rather than Python's ``hash`` so
    the choice is identical across processes (``--jobs N`` workers) and
    interpreter runs — PYTHONHASHSEED randomization must not leak into
    path selection.
    """
    if n < 1:
        raise ValueError(f"ecmp_index needs n >= 1, got {n}")
    material = "|".join(str(k) for k in keys)
    return zlib.crc32(material.encode()) % n


class Device:
    """Anything with ports: hosts and switches derive from this."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.ports: Dict[int, Port] = {}
        self._next_port = 1

    def new_port(self) -> Port:
        port = Port(self, self._next_port)
        self.ports[self._next_port] = port
        self._next_port += 1
        return port

    def handle_packet(self, packet: Packet, in_port: Port) -> None:  # pragma: no cover
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name}>"


class Network:
    """Container tracking every device and link; owns global byte counters."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.devices: Dict[str, Device] = {}
        self.links: List[Link] = []
        self._link_index: Dict[frozenset, Link] = {}

    def register(self, device: Device) -> Device:
        if device.name in self.devices:
            raise ValueError(f"duplicate device name {device.name!r}")
        self.devices[device.name] = device
        return device

    def connect(
        self,
        a: Device,
        b: Device,
        bandwidth_bps: float = GBPS,
        latency_s: float = 50e-6,
    ) -> Link:
        """Create a duplex link between fresh ports on ``a`` and ``b``."""
        link = Link(self.sim, a.new_port(), b.new_port(), bandwidth_bps, latency_s)
        self.links.append(link)
        # First link between a pair wins, matching the linear-scan order
        # link_between used before it was indexed.
        self._link_index.setdefault(frozenset((a.name, b.name)), link)
        return link

    def link_between(self, a: Device, b: Device) -> Optional[Link]:
        return self._link_index.get(frozenset((a.name, b.name)))

    # -- measurement (Figs 6-7) ------------------------------------------------
    def total_link_bytes(self) -> int:
        """Sum of bytes transmitted over every channel — the paper's
        "total network link load" metric (Fig 6)."""
        return sum(link.total_bytes for link in self.links)

    def reset_link_counters(self) -> None:
        for link in self.links:
            link.reset_counters()

    def host_io_bytes(self, device: Device) -> int:
        """Bytes sent + received on ``device``'s access link(s) — the Fig 7
        per-node storage-load metric."""
        total = 0
        for link in self.links:
            if link.a.device is device or link.b.device is device:
                total += link.total_bytes
        return total


class LeafSpineFabric:
    """A two-tier Clos: one leaf switch per rack, fully meshed to spines.

    The fabric owns only wiring and rack bookkeeping; rule planning lives
    in the controller.  Leaves are named ``leaf0..leaf{R-1}``, spines
    ``spine0..spine{S-1}``.  ``uplinks[(leaf, spine)]`` is the Link between
    them — the thing a ``rack_isolate`` fault cuts.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        n_racks: int,
        n_spines: int,
        lookup_latency_s: float = 5e-6,
        table_capacity: int = 0,
        link_bandwidth_bps: float = GBPS,
        link_latency_s: float = 50e-6,
    ):
        # Deferred import: switch.py imports Device from this module.
        from .switch import OpenFlowSwitch

        def build(name: str) -> "OpenFlowSwitch":
            kwargs = dict(lookup_latency_s=lookup_latency_s)
            if table_capacity > 0:
                kwargs["table_capacity"] = table_capacity
            return network.register(OpenFlowSwitch(sim, name, **kwargs))

        self.sim = sim
        self.network = network
        self.n_racks = n_racks
        self.n_spines = n_spines
        self.leaves = [build(f"leaf{r}") for r in range(n_racks)]
        self.spines = [build(f"spine{s}") for s in range(n_spines)]
        self.uplinks: Dict[Tuple[str, str], Link] = {}
        self.uplink_ports: Dict[Tuple[str, str], int] = {}
        for leaf in self.leaves:
            for spine in self.spines:
                link = network.connect(leaf, spine, link_bandwidth_bps, link_latency_s)
                self.uplinks[(leaf.name, spine.name)] = link
                leaf_port = link.a if link.a.device is leaf else link.b
                spine_port = link.a if link.a.device is spine else link.b
                self.uplink_ports[(leaf.name, spine.name)] = leaf_port.number
                self.uplink_ports[(spine.name, leaf.name)] = spine_port.number
        #: host name -> rack index, filled by attach_host.
        self.rack_of_host: Dict[str, int] = {}

    @property
    def switches(self) -> list:
        """Every fabric switch, leaves first (deterministic order)."""
        return [*self.leaves, *self.spines]

    def leaf_of(self, rack: int):
        return self.leaves[rack]

    def attach_host(
        self,
        host: Device,
        rack: int,
        bandwidth_bps: float = GBPS,
        latency_s: float = 50e-6,
    ) -> Link:
        """Wire ``host`` below its rack's leaf and record its rack."""
        link = self.network.connect(
            self.leaves[rack], host, bandwidth_bps, latency_s
        )
        self.rack_of_host[host.name] = rack
        return link

    def uplinks_of(self, rack: int) -> List[Link]:
        """Every uplink of rack ``rack``'s leaf — cutting all of them
        isolates the rack from the rest of the fabric (its hosts can still
        talk to each other through the leaf)."""
        leaf = self.leaves[rack].name
        return [self.uplinks[(leaf, spine.name)] for spine in self.spines]
