"""Links, channels and ports.

A :class:`Link` is a duplex cable: two independent unidirectional
:class:`Channel` objects.  Each channel is a FIFO wire — concurrent
transfers queue behind one another, which is the mechanism that reproduces
the paper's contention effects (a NOOB primary pushing R−1 copies up a
single 1 Gbps uplink, Figs 5–9).

Transmission model (flow-burst store-and-forward; DESIGN.md §5): a packet
holds the channel for ``size_bytes * 8 / bandwidth`` seconds, then is
delivered to the far device after the propagation latency.  Channels count
transmitted bytes for the network-load figures and can drop packets with a
configured loss rate to exercise the reliable-multicast repair path.

Hot path (DESIGN.md §5g): a transmission is a chain of pooled kernel
callbacks — grant (urgent, at enqueue time), serialize-start, end-of-
serialization (counters, loss/jitter draws, queue hand-off), delivery —
that schedules exactly the same simulated moments the previous
process-per-packet implementation did, minus the generator, resource and
timeout allocations.  :func:`transmit_fanout` additionally collapses a
multicast fan-out over idle, equal-bandwidth channels into ONE shared
grant/serialize/finish chain carrying the recipient list (per-receiver
loss/jitter draws run at fire time, in leg order, so RNG streams see the
same sequence as per-leg transmission).  In flow-approximation mode
(``ClusterConfig.sim_mode="approx"``) non-exempt packets skip the chain
entirely: one delivery event, with queueing folded in analytically via
per-channel service-rate accounting (``_free_at``).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, List, Optional, TYPE_CHECKING

import numpy as np

from ..obs.tracer import packet_op
from ..sim import Counter, Simulator, URGENT
from .packet import Packet, Proto

if TYPE_CHECKING:  # pragma: no cover
    from .topology import Device

__all__ = ["Channel", "Link", "Port", "transmit_fanout", "GBPS", "MBPS"]

GBPS = 1_000_000_000.0
MBPS = 1_000_000.0


class Port:
    """One attachment point of a device; at most one link plugs into it."""

    __slots__ = ("device", "number", "link")

    def __init__(self, device: "Device", number: int):
        self.device = device
        self.number = number
        self.link: Optional[Link] = None

    @property
    def peer(self) -> Optional["Port"]:
        """The port at the far end of the attached link (None if unplugged)."""
        if self.link is None:
            return None
        return self.link.b if self.link.a is self else self.link.a

    def send(self, packet: Packet) -> None:
        """Enqueue ``packet`` for transmission out of this port."""
        if self.link is None:
            raise RuntimeError(f"port {self.device.name}:{self.number} is unplugged")
        self.link.channel_from(self).transmit(packet)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Port {self.device.name}:{self.number}>"


class Channel:
    """A unidirectional wire with bandwidth, latency, loss and counters."""

    def __init__(
        self,
        sim: Simulator,
        src: Port,
        dst: Port,
        bandwidth_bps: float,
        latency_s: float,
        name: str = "",
    ):
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive: {bandwidth_bps}")
        if latency_s < 0:
            raise ValueError(f"latency must be non-negative: {latency_s}")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.bandwidth_bps = bandwidth_bps
        self.latency_s = latency_s
        self.name = name or f"{src.device.name}->{dst.device.name}"
        self.tx_bytes = Counter(f"{self.name}.tx_bytes")
        self.tx_packets = Counter(f"{self.name}.tx_packets")
        self.dropped_packets = Counter(f"{self.name}.dropped")
        self.loss_rate = 0.0
        self._loss_rng: Optional[np.random.Generator] = None
        self.delay_jitter_s = 0.0
        self._jitter_rng: Optional[np.random.Generator] = None
        self.down = False
        #: True while a packet occupies the wire (grant pending or
        #: serializing); set at enqueue time so later transmits queue FIFO.
        self._sending = False
        #: Packets waiting for the wire, FIFO.
        self._queue: deque = deque()
        #: Analytic wire-occupancy horizon for flow-approximation mode:
        #: absolute sim time at which the wire frees up.  The exact path
        #: keeps it current too, so approximated flows queue behind exact
        #: (protocol) traffic sharing the link.
        self._free_at = 0.0

    def set_loss(self, rate: float, rng: Optional[np.random.Generator] = None) -> None:
        """Enable random packet loss (whole control packets; bulk bursts
        lose chunks at the transport layer instead).

        ``rate`` must be in ``[0, 1)`` — total loss is modeled by taking
        the channel :meth:`set_down`, not by a loss rate of 1.0.  A rate of
        0.0 disables loss injection again (the rng may then be omitted).
        """
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1): {rate}")
        if rate > 0.0 and rng is None:
            raise ValueError("a loss rate > 0 needs an rng")
        self.loss_rate = rate
        self._loss_rng = rng if rate > 0.0 else None

    def set_delay_jitter(self, jitter_s: float, rng: Optional[np.random.Generator] = None) -> None:
        """Add a random extra delay in ``[0, jitter_s)`` to every delivery.

        This is the chaos-injection hook for delay bursts: latency stays
        configured as built, the jitter rides on top and can be turned off
        again with ``jitter_s=0.0`` (no monkey-patching of ``latency_s``).
        """
        if jitter_s < 0:
            raise ValueError(f"delay jitter must be non-negative: {jitter_s}")
        if jitter_s > 0.0 and rng is None:
            raise ValueError("a delay jitter > 0 needs an rng")
        self.delay_jitter_s = jitter_s
        self._jitter_rng = rng if jitter_s > 0.0 else None

    def set_down(self, down: bool = True) -> None:
        """Cut (or restore) the channel: packets transmit but never arrive.

        Unlike :meth:`~repro.net.host.Host.fail` the attached devices stay
        alive — this models a network partition, not a crash."""
        self.down = down

    def serialization_delay(self, packet: Packet) -> float:
        return packet.size_bytes * 8.0 / self.bandwidth_bps

    def transmit(self, packet: Packet) -> None:
        """Start (or queue) transmission of ``packet``."""
        sim = self.sim
        if sim.approx_mode:
            ex = sim.approx_exempt_ports
            if (
                packet.dport not in ex
                and packet.sport not in ex
                and packet.proto is not Proto.ARP
            ):
                self._transmit_approx(packet)
                return
        if self._sending:
            tr = sim.tracer
            if tr is not None:
                tr.instant(
                    "queued", "link", node=self.name, op=packet_op(packet.payload),
                    depth=len(self._queue) + 1,
                )
            self._queue.append(packet)
            return
        self._sending = True
        sim._schedule_call(0.0, self._grant, packet, priority=URGENT)

    def _grant(self, packet: Packet) -> None:
        # Urgent enqueue hop + normal grant hop: preserves the event-id
        # assignment moments of the old process-start/resource-grant pair,
        # so same-timestamp ties break exactly as before the rewrite.
        self.sim._schedule_call(0.0, self._serialize, packet)

    def _serialize(self, packet: Packet) -> None:
        ser = packet._wire_size * 8.0 / self.bandwidth_bps
        self._free_at = self.sim._now + ser
        self.sim._schedule_call(ser, self._finish_tx, packet)

    def _finish_tx(self, packet: Packet) -> None:
        """End of serialization: counters, fault draws, delivery, hand-off."""
        sim = self.sim
        self.tx_bytes.add(packet._wire_size)
        self.tx_packets.add()
        dropped = False
        if self.down:
            self.dropped_packets.add()
            dropped = True
            tr = sim.tracer
            if tr is not None:
                tr.instant("drop", "link", node=self.name,
                           op=packet_op(packet.payload), reason="down")
        elif (
            self.loss_rate
            and self._loss_rng is not None
            and self._loss_rng.random() < self.loss_rate
        ):
            self.dropped_packets.add()
            dropped = True
            tr = sim.tracer
            if tr is not None:
                tr.instant("drop", "link", node=self.name,
                           op=packet_op(packet.payload), reason="loss")
        if not dropped:
            delay = self.latency_s
            if self.delay_jitter_s and self._jitter_rng is not None:
                delay += self._jitter_rng.random() * self.delay_jitter_s
            sim._schedule_call(delay, self._deliver, packet)
        queue = self._queue
        if queue:
            sim._schedule_call(0.0, self._serialize, queue.popleft())
        else:
            self._sending = False

    def _transmit_approx(self, packet: Packet) -> None:
        """Flow-approximation delivery: one event, analytic queueing.

        The wire-occupancy window is folded into the delivery delay via
        ``_free_at`` service-rate accounting instead of being simulated as
        grant/serialize/finish events; loss and jitter draw at enqueue
        time (approx mode trades exact RNG ordering for event count).
        """
        sim = self.sim
        now = sim._now
        start = self._free_at
        if start < now:
            start = now
        end = start + packet._wire_size * 8.0 / self.bandwidth_bps
        self._free_at = end
        self.tx_bytes.add(packet._wire_size)
        self.tx_packets.add()
        if self.down:
            self.dropped_packets.add()
            tr = sim.tracer
            if tr is not None:
                tr.instant("drop", "link", node=self.name,
                           op=packet_op(packet.payload), reason="down")
            return
        if (
            self.loss_rate
            and self._loss_rng is not None
            and self._loss_rng.random() < self.loss_rate
        ):
            self.dropped_packets.add()
            tr = sim.tracer
            if tr is not None:
                tr.instant("drop", "link", node=self.name,
                           op=packet_op(packet.payload), reason="loss")
            return
        delay = end - now + self.latency_s
        if self.delay_jitter_s and self._jitter_rng is not None:
            delay += self._jitter_rng.random() * self.delay_jitter_s
        sim._schedule_call(delay, self._deliver, packet)

    def _deliver(self, packet: Packet) -> None:
        self.dst.device.handle_packet(packet, self.dst)

    @property
    def queued(self) -> int:
        """Transfers waiting behind the one on the wire (diagnostics)."""
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Channel {self.name} {self.bandwidth_bps/GBPS:g}Gbps>"


def transmit_fanout(sim: Simulator, legs: List[tuple]) -> None:
    """Vectorized multicast fan-out: ONE grant/serialize/finish chain for R legs.

    ``legs`` is ``[(channel, packet), ...]``; the caller guarantees every
    channel is idle and distinct and all share one bandwidth (same packet
    size across legs makes serialization end simultaneously).  The three
    shared hops replace R consecutive per-leg hops of the same timestamp
    and priority, which preserves tie-breaking against any third-party
    event; per-leg delivery events, loss/jitter draws and queue hand-offs
    run at fire time in leg order — the same order the per-leg chains
    produced — so RNG streams and delivery ordering are bit-identical.
    """
    for ch, _ in legs:
        ch._sending = True
    sim._schedule_call(0.0, _fanout_grant, sim, legs, priority=URGENT)


def _fanout_grant(sim: Simulator, legs: List[tuple]) -> None:
    sim._schedule_call(0.0, _fanout_serialize, sim, legs)


def _fanout_serialize(sim: Simulator, legs: List[tuple]) -> None:
    ch0, p0 = legs[0]
    ser = p0._wire_size * 8.0 / ch0.bandwidth_bps
    free = sim._now + ser
    for ch, _ in legs:
        ch._free_at = free
    sim._schedule_call(ser, _fanout_finish, legs)


def _fanout_finish(legs: List[tuple]) -> None:
    # Unpacked at fire time: each leg runs the normal end-of-serialization
    # step (counters, draws, delivery, queue hand-off) in leg order.
    for ch, packet in legs:
        ch._finish_tx(packet)


class Link:
    """A duplex link: two channels sharing configuration."""

    def __init__(
        self,
        sim: Simulator,
        a: Port,
        b: Port,
        bandwidth_bps: float = GBPS,
        latency_s: float = 50e-6,
        name: str = "",
    ):
        if a.link is not None or b.link is not None:
            raise RuntimeError("port already linked")
        self.sim = sim
        self.a = a
        self.b = b
        self.name = name or f"{a.device.name}<->{b.device.name}"
        self.ab = Channel(sim, a, b, bandwidth_bps, latency_s)
        self.ba = Channel(sim, b, a, bandwidth_bps, latency_s)
        a.link = self
        b.link = self

    def channel_from(self, port: Port) -> Channel:
        if port is self.a:
            return self.ab
        if port is self.b:
            return self.ba
        raise ValueError(f"{port!r} is not an endpoint of {self.name}")

    @property
    def channels(self) -> List[Channel]:
        return [self.ab, self.ba]

    def set_bandwidth(self, bandwidth_bps: float) -> None:
        """Reconfigure both directions (Fig 8 throttles replicas to 50 Mbps)."""
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive: {bandwidth_bps}")
        self.ab.bandwidth_bps = bandwidth_bps
        self.ba.bandwidth_bps = bandwidth_bps

    def set_loss(self, rate: float, rng=None) -> None:
        """Enable/disable random loss on both directions (chaos bursts)."""
        self.ab.set_loss(rate, rng)
        self.ba.set_loss(rate, rng)

    def set_delay_jitter(self, jitter_s: float, rng=None) -> None:
        """Enable/disable extra random delay on both directions."""
        self.ab.set_delay_jitter(jitter_s, rng)
        self.ba.set_delay_jitter(jitter_s, rng)

    def set_down(self, down: bool = True) -> None:
        """Cut (or restore) both directions — the partition primitive."""
        self.ab.set_down(down)
        self.ba.set_down(down)

    @property
    def down(self) -> bool:
        return self.ab.down and self.ba.down

    @property
    def total_bytes(self) -> int:
        return self.ab.tx_bytes.value + self.ba.tx_bytes.value

    def reset_counters(self) -> None:
        for ch in self.channels:
            ch.tx_bytes.reset()
            ch.tx_packets.reset()
            ch.dropped_packets.reset()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Link {self.name}>"
