"""Links, channels and ports.

A :class:`Link` is a duplex cable: two independent unidirectional
:class:`Channel` objects.  Each channel is a FIFO resource — concurrent
transfers queue behind one another, which is the mechanism that reproduces
the paper's contention effects (a NOOB primary pushing R−1 copies up a
single 1 Gbps uplink, Figs 5–9).

Transmission model (flow-burst store-and-forward; DESIGN.md §5): a packet
holds the channel for ``size_bytes * 8 / bandwidth`` seconds, then is
delivered to the far device after the propagation latency.  Channels count
transmitted bytes for the network-load figures and can drop packets with a
configured loss rate to exercise the reliable-multicast repair path.
"""

from __future__ import annotations

from typing import Callable, List, Optional, TYPE_CHECKING

import numpy as np

from ..obs.tracer import packet_op
from ..sim import Counter, Resource, Simulator
from .packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from .topology import Device

__all__ = ["Channel", "Link", "Port", "GBPS", "MBPS"]

GBPS = 1_000_000_000.0
MBPS = 1_000_000.0


class Port:
    """One attachment point of a device; at most one link plugs into it."""

    __slots__ = ("device", "number", "link")

    def __init__(self, device: "Device", number: int):
        self.device = device
        self.number = number
        self.link: Optional[Link] = None

    @property
    def peer(self) -> Optional["Port"]:
        """The port at the far end of the attached link (None if unplugged)."""
        if self.link is None:
            return None
        return self.link.b if self.link.a is self else self.link.a

    def send(self, packet: Packet) -> None:
        """Enqueue ``packet`` for transmission out of this port."""
        if self.link is None:
            raise RuntimeError(f"port {self.device.name}:{self.number} is unplugged")
        self.link.channel_from(self).transmit(packet)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Port {self.device.name}:{self.number}>"


class Channel:
    """A unidirectional wire with bandwidth, latency, loss and counters."""

    def __init__(
        self,
        sim: Simulator,
        src: Port,
        dst: Port,
        bandwidth_bps: float,
        latency_s: float,
        name: str = "",
    ):
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive: {bandwidth_bps}")
        if latency_s < 0:
            raise ValueError(f"latency must be non-negative: {latency_s}")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.bandwidth_bps = bandwidth_bps
        self.latency_s = latency_s
        self.name = name or f"{src.device.name}->{dst.device.name}"
        self.tx_bytes = Counter(f"{self.name}.tx_bytes")
        self.tx_packets = Counter(f"{self.name}.tx_packets")
        self.dropped_packets = Counter(f"{self.name}.dropped")
        self.loss_rate = 0.0
        self._loss_rng: Optional[np.random.Generator] = None
        self.delay_jitter_s = 0.0
        self._jitter_rng: Optional[np.random.Generator] = None
        self.down = False
        self._busy = Resource(sim, capacity=1, name=f"{self.name}.wire")

    def set_loss(self, rate: float, rng: Optional[np.random.Generator] = None) -> None:
        """Enable random packet loss (whole control packets; bulk bursts
        lose chunks at the transport layer instead).

        ``rate`` must be in ``[0, 1)`` — total loss is modeled by taking
        the channel :meth:`set_down`, not by a loss rate of 1.0.  A rate of
        0.0 disables loss injection again (the rng may then be omitted).
        """
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1): {rate}")
        if rate > 0.0 and rng is None:
            raise ValueError("a loss rate > 0 needs an rng")
        self.loss_rate = rate
        self._loss_rng = rng if rate > 0.0 else None

    def set_delay_jitter(self, jitter_s: float, rng: Optional[np.random.Generator] = None) -> None:
        """Add a random extra delay in ``[0, jitter_s)`` to every delivery.

        This is the chaos-injection hook for delay bursts: latency stays
        configured as built, the jitter rides on top and can be turned off
        again with ``jitter_s=0.0`` (no monkey-patching of ``latency_s``).
        """
        if jitter_s < 0:
            raise ValueError(f"delay jitter must be non-negative: {jitter_s}")
        if jitter_s > 0.0 and rng is None:
            raise ValueError("a delay jitter > 0 needs an rng")
        self.delay_jitter_s = jitter_s
        self._jitter_rng = rng if jitter_s > 0.0 else None

    def set_down(self, down: bool = True) -> None:
        """Cut (or restore) the channel: packets transmit but never arrive.

        Unlike :meth:`~repro.net.host.Host.fail` the attached devices stay
        alive — this models a network partition, not a crash."""
        self.down = down

    def serialization_delay(self, packet: Packet) -> float:
        return packet.size_bytes * 8.0 / self.bandwidth_bps

    def transmit(self, packet: Packet) -> None:
        """Start (or queue) transmission of ``packet``."""
        tr = self.sim.tracer
        if tr is not None and (self._busy.in_use or self._busy.queued):
            tr.instant(
                "queued", "link", node=self.name, op=packet_op(packet.payload),
                depth=self._busy.queued + 1,
            )
        self.sim.process(self._transmit(packet))

    def _transmit(self, packet: Packet):
        req = self._busy.request()
        yield req
        try:
            yield self.sim.timeout(self.serialization_delay(packet))
            self.tx_bytes.add(packet.size_bytes)
            self.tx_packets.add()
            if self.down:
                self.dropped_packets.add()
                tr = self.sim.tracer
                if tr is not None:
                    tr.instant("drop", "link", node=self.name,
                               op=packet_op(packet.payload), reason="down")
                return
            if self.loss_rate and self._loss_rng is not None:
                if self._loss_rng.random() < self.loss_rate:
                    self.dropped_packets.add()
                    tr = self.sim.tracer
                    if tr is not None:
                        tr.instant("drop", "link", node=self.name,
                                   op=packet_op(packet.payload), reason="loss")
                    return
            delay = self.latency_s
            if self.delay_jitter_s and self._jitter_rng is not None:
                delay += self._jitter_rng.random() * self.delay_jitter_s
            self.sim.call_in(delay, self._deliver, packet)
        finally:
            req.release()

    def _deliver(self, packet: Packet) -> None:
        self.dst.device.handle_packet(packet, self.dst)

    @property
    def queued(self) -> int:
        """Transfers waiting behind the one on the wire (diagnostics)."""
        return self._busy.queued

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Channel {self.name} {self.bandwidth_bps/GBPS:g}Gbps>"


class Link:
    """A duplex link: two channels sharing configuration."""

    def __init__(
        self,
        sim: Simulator,
        a: Port,
        b: Port,
        bandwidth_bps: float = GBPS,
        latency_s: float = 50e-6,
        name: str = "",
    ):
        if a.link is not None or b.link is not None:
            raise RuntimeError("port already linked")
        self.sim = sim
        self.a = a
        self.b = b
        self.name = name or f"{a.device.name}<->{b.device.name}"
        self.ab = Channel(sim, a, b, bandwidth_bps, latency_s)
        self.ba = Channel(sim, b, a, bandwidth_bps, latency_s)
        a.link = self
        b.link = self

    def channel_from(self, port: Port) -> Channel:
        if port is self.a:
            return self.ab
        if port is self.b:
            return self.ba
        raise ValueError(f"{port!r} is not an endpoint of {self.name}")

    @property
    def channels(self) -> List[Channel]:
        return [self.ab, self.ba]

    def set_bandwidth(self, bandwidth_bps: float) -> None:
        """Reconfigure both directions (Fig 8 throttles replicas to 50 Mbps)."""
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive: {bandwidth_bps}")
        self.ab.bandwidth_bps = bandwidth_bps
        self.ba.bandwidth_bps = bandwidth_bps

    def set_loss(self, rate: float, rng=None) -> None:
        """Enable/disable random loss on both directions (chaos bursts)."""
        self.ab.set_loss(rate, rng)
        self.ba.set_loss(rate, rng)

    def set_delay_jitter(self, jitter_s: float, rng=None) -> None:
        """Enable/disable extra random delay on both directions."""
        self.ab.set_delay_jitter(jitter_s, rng)
        self.ba.set_delay_jitter(jitter_s, rng)

    def set_down(self, down: bool = True) -> None:
        """Cut (or restore) both directions — the partition primitive."""
        self.ab.set_down(down)
        self.ba.set_down(down)

    @property
    def down(self) -> bool:
        return self.ab.down and self.ba.down

    @property
    def total_bytes(self) -> int:
        return self.ab.tx_bytes.value + self.ba.tx_bytes.value

    def reset_counters(self) -> None:
        for ch in self.channels:
            ch.tx_bytes.reset()
            ch.tx_packets.reset()
            ch.dropped_packets.reset()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Link {self.name}>"
