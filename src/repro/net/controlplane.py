"""The controller ↔ switch control channel.

OpenFlow messages (packet-in, flow-mod, group-mod, packet-out) cross a
TCP control connection in reality; here each message is applied after a
configurable one-way latency.  The channel also counts messages so the
membership-maintenance scalability claim (§4.1: O(S) switch updates per
membership change) can be measured directly.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..sim import Counter, Simulator
from .flowtable import Group, Rule
from .packet import Packet

__all__ = ["ControlPlane", "ControllerApp"]


class ControllerApp:
    """Base class for controller applications.

    Subclasses (the NICE controller, the plain L3 learning switch) override
    :meth:`on_packet_in`.  ``self.channel`` is bound by
    :meth:`ControlPlane.attach`.
    """

    def __init__(self) -> None:
        self.channel: Optional["ControlPlane"] = None

    def on_packet_in(self, switch, packet: Packet, in_port_no: int, buffer_id: int) -> None:
        raise NotImplementedError  # pragma: no cover


class ControlPlane:
    """Binds one controller app to one or more switches with message latency."""

    def __init__(self, sim: Simulator, controller: ControllerApp, latency_s: float = 500e-6):
        if latency_s < 0:
            raise ValueError(f"latency must be non-negative: {latency_s}")
        self.sim = sim
        self.controller = controller
        self.latency_s = latency_s
        self.switches: List = []
        controller.channel = self
        self.messages_to_switch = Counter("ctrl.to_switch")
        self.messages_to_controller = Counter("ctrl.to_controller")

    def attach(self, switch) -> None:
        """Register ``switch`` under this controller."""
        switch.controller = self.controller
        self.switches.append(switch)

    # -- switch -> controller -------------------------------------------------
    def packet_in(self, switch, packet: Packet, in_port_no: int, buffer_id: int) -> None:
        self.messages_to_controller.add()
        self.sim.call_in(
            self.latency_s,
            self.controller.on_packet_in,
            switch,
            packet,
            in_port_no,
            buffer_id,
        )

    # -- controller -> switch ---------------------------------------------------
    def flow_mod(self, switch, rule: Rule, done: Optional[Callable] = None) -> None:
        """Install ``rule`` on ``switch`` after the control latency."""
        self.messages_to_switch.add()
        self.sim.call_in(self.latency_s, self._apply, switch.install_rule, rule, done)

    def flow_delete(self, switch, cookie: str, done: Optional[Callable] = None) -> None:
        """Delete all rules with ``cookie`` on ``switch``."""
        self.messages_to_switch.add()
        self.sim.call_in(self.latency_s, self._apply, switch.remove_cookie, cookie, done)

    def group_mod(self, switch, group: Group, done: Optional[Callable] = None) -> None:
        self.messages_to_switch.add()
        self.sim.call_in(self.latency_s, self._apply, switch.install_group, group, done)

    def group_delete(self, switch, group_id: int, done: Optional[Callable] = None) -> None:
        self.messages_to_switch.add()
        self.sim.call_in(self.latency_s, self._apply, switch.remove_group, group_id, done)

    def packet_out(self, switch, packet: Packet, actions, done: Optional[Callable] = None) -> None:
        """Inject ``packet`` at ``switch`` and run ``actions`` on it."""
        self.messages_to_switch.add()
        self.sim.call_in(
            self.latency_s, self._apply, switch.apply_actions, (packet, actions, 0), done
        )

    def release_buffered(self, switch, buffer_id: int) -> None:
        self.messages_to_switch.add()
        self.sim.call_in(self.latency_s, switch.release_buffered, buffer_id)

    def drop_buffered(self, switch, buffer_id: int) -> None:
        self.messages_to_switch.add()
        self.sim.call_in(self.latency_s, switch.drop_buffered, buffer_id)

    @staticmethod
    def _apply(func: Callable, arg, done: Optional[Callable]) -> None:
        if isinstance(arg, tuple):
            func(*arg)
        else:
            func(arg)
        if done is not None:
            done()
