"""The controller ↔ switch control channel.

OpenFlow messages (packet-in, flow-mod, group-mod, packet-out) cross a
TCP control connection in reality; here each message is applied after a
configurable one-way latency.  The channel also counts messages so the
membership-maintenance scalability claim (§4.1: O(S) switch updates per
membership change) can be measured directly.

For control-plane fault tolerance, table-mutating messages may carry an
**epoch**: the switch fences any flow-mod stamped older than the highest
epoch it has seen, so a deposed metadata leader / controller cannot
corrupt tables after a takeover.  Unstamped messages (``epoch=None`` and
no ``epoch`` attribute on the controller) bypass fencing — the legacy
single-controller path is unchanged.  The channel can also be taken
``down`` (controller crash): while down every message in both directions
is dropped and table-miss packets are discarded at the switch, which
keeps forwarding on its installed rules — the standard SDN
fail-standalone behavior.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..sim import Counter, Simulator
from .flowtable import Group, Rule
from .packet import Packet

__all__ = ["ControlPlane", "ControllerApp"]


class ControllerApp:
    """Base class for controller applications.

    Subclasses (the NICE controller, the plain L3 learning switch) override
    :meth:`on_packet_in`.  ``self.channel`` is bound by
    :meth:`ControlPlane.attach`.
    """

    def __init__(self) -> None:
        self.channel: Optional["ControlPlane"] = None

    def on_packet_in(self, switch, packet: Packet, in_port_no: int, buffer_id: int) -> None:
        raise NotImplementedError  # pragma: no cover


class ControlPlane:
    """Binds one controller app to one or more switches with message latency."""

    def __init__(self, sim: Simulator, controller: ControllerApp, latency_s: float = 500e-6):
        if latency_s < 0:
            raise ValueError(f"latency must be non-negative: {latency_s}")
        self.sim = sim
        self.controller = controller
        self.latency_s = latency_s
        self.switches: List = []
        controller.channel = self
        self.messages_to_switch = Counter("ctrl.to_switch")
        self.messages_to_controller = Counter("ctrl.to_controller")
        #: Controller outage flag (chaos ``controller_crash``).
        self.down = False
        self.dropped_down = Counter("ctrl.dropped_down")

    def attach(self, switch) -> None:
        """Register ``switch`` under this controller."""
        switch.controller = self.controller
        self.switches.append(switch)

    def set_down(self, down: bool) -> None:
        """Controller outage: while down, every control message (both
        directions) is dropped — switches keep forwarding on installed
        rules, table-miss packets are discarded instead of buffered
        forever."""
        self.down = bool(down)

    def _epoch(self, epoch: Optional[int]) -> Optional[int]:
        if epoch is not None:
            return epoch
        return getattr(self.controller, "epoch", None)

    # -- switch -> controller -------------------------------------------------
    def packet_in(self, switch, packet: Packet, in_port_no: int, buffer_id: int) -> None:
        if self.down:
            self.dropped_down.add()
            switch.drop_buffered(buffer_id)
            return
        self.messages_to_controller.add()
        self.sim.call_in(
            self.latency_s,
            self.controller.on_packet_in,
            switch,
            packet,
            in_port_no,
            buffer_id,
        )

    # -- controller -> switch ---------------------------------------------------
    def flow_mod(
        self,
        switch,
        rule: Rule,
        done: Optional[Callable] = None,
        epoch: Optional[int] = None,
    ) -> None:
        """Install ``rule`` on ``switch`` after the control latency."""
        if self.down:
            self.dropped_down.add()
            return
        self.messages_to_switch.add()
        self.sim.call_in(
            self.latency_s, self._apply, switch, self._epoch(epoch),
            switch.install_rule, rule, done,
        )

    def flow_delete(
        self,
        switch,
        cookie: str,
        done: Optional[Callable] = None,
        epoch: Optional[int] = None,
    ) -> None:
        """Delete all rules with ``cookie`` on ``switch``."""
        if self.down:
            self.dropped_down.add()
            return
        self.messages_to_switch.add()
        self.sim.call_in(
            self.latency_s, self._apply, switch, self._epoch(epoch),
            switch.remove_cookie, cookie, done,
        )

    def group_mod(
        self,
        switch,
        group: Group,
        done: Optional[Callable] = None,
        epoch: Optional[int] = None,
    ) -> None:
        if self.down:
            self.dropped_down.add()
            return
        self.messages_to_switch.add()
        self.sim.call_in(
            self.latency_s, self._apply, switch, self._epoch(epoch),
            switch.install_group, group, done,
        )

    def group_delete(
        self,
        switch,
        group_id: int,
        done: Optional[Callable] = None,
        epoch: Optional[int] = None,
    ) -> None:
        if self.down:
            self.dropped_down.add()
            return
        self.messages_to_switch.add()
        self.sim.call_in(
            self.latency_s, self._apply, switch, self._epoch(epoch),
            switch.remove_group, group_id, done,
        )

    def apply_batch(
        self,
        switch,
        ops,
        done: Optional[Callable] = None,
        epoch: Optional[int] = None,
    ) -> None:
        """Ship a list of table operations to ``switch`` in one burst.

        ``ops`` is a sequence of ``(kind, arg)`` pairs — ``("rule", Rule)``,
        ``("delete", cookie)``, ``("group", Group)``, ``("group_delete", id)``
        — applied in order after the control latency, the moral equivalent
        of an OpenFlow bundle.  Each operation still counts as one message
        (the §4.1 O(S)-updates-per-membership-change accounting is
        unchanged); what collapses is the event-queue cost: one scheduled
        delivery per switch instead of one per message, which is where the
        controller's 1000-node sync time went.  The epoch fence is checked
        once at delivery, equivalent to per-message checks since every
        operation in the batch carries the same epoch.
        """
        if not ops:
            return
        if self.down:
            self.dropped_down.add(len(ops))
            return
        self.messages_to_switch.add(len(ops))
        self.sim.call_in(
            self.latency_s, self._apply_batch, switch, self._epoch(epoch), ops, done,
        )

    _BATCH_DISPATCH = {
        "rule": "install_rule",
        "delete": "remove_cookie",
        "group": "install_group",
        "group_delete": "remove_group",
    }

    @staticmethod
    def _apply_batch(switch, epoch: Optional[int], ops, done: Optional[Callable]) -> None:
        if not switch.accept_epoch(epoch):
            return
        dispatch = ControlPlane._BATCH_DISPATCH
        for kind, arg in ops:
            getattr(switch, dispatch[kind])(arg)
        if done is not None:
            done()

    def role_claim(self, switch, epoch: Optional[int] = None) -> None:
        """OFPT_ROLE_REQUEST-style mastership claim: advance the switch's
        controller epoch (OpenFlow generation_id) without touching tables.

        A new leader sends this before/with its reconciliation pass so the
        fence engages even when reconcile finds nothing to repair —
        otherwise a deposed leader whose epoch was never superseded *at
        the switch* could still mutate rules."""
        if self.down:
            self.dropped_down.add()
            return
        self.messages_to_switch.add()
        self.sim.call_in(self.latency_s, switch.accept_epoch, self._epoch(epoch))

    def packet_out(self, switch, packet: Packet, actions, done: Optional[Callable] = None) -> None:
        """Inject ``packet`` at ``switch`` and run ``actions`` on it."""
        if self.down:
            self.dropped_down.add()
            return
        self.messages_to_switch.add()
        self.sim.call_in(
            self.latency_s, self._apply, switch, None,
            switch.apply_actions, (packet, actions, 0), done,
        )

    def release_buffered(self, switch, buffer_id: int) -> None:
        if self.down:
            self.dropped_down.add()
            return
        self.messages_to_switch.add()
        self.sim.call_in(self.latency_s, switch.release_buffered, buffer_id)

    def drop_buffered(self, switch, buffer_id: int) -> None:
        if self.down:
            self.dropped_down.add()
            return
        self.messages_to_switch.add()
        self.sim.call_in(self.latency_s, switch.drop_buffered, buffer_id)

    @staticmethod
    def _apply(switch, epoch: Optional[int], func: Callable, arg, done: Optional[Callable]) -> None:
        # The fence is checked at apply time (after the channel latency):
        # what matters is the highest epoch the switch has seen when the
        # message *lands*, not when it was sent.
        if not switch.accept_epoch(epoch):
            return
        if isinstance(arg, tuple):
            func(*arg)
        else:
            func(arg)
        if done is not None:
            done()
