"""OpenFlow-style flow tables: matches, actions, rules and groups.

This mirrors the OpenFlow 1.3 feature subset the paper uses (§2.2, §5):
prefix wildcards on IP source/destination, exact matches on protocol and
ports, set-field rewrites of destination IP/MAC, unicast output, group
(multicast) output, and send-to-controller.  Rules carry priorities and
optional idle timeouts; the controller owns rule lifecycle.
"""

from __future__ import annotations

import itertools
import os
from bisect import insort
from dataclasses import dataclass, field
from typing import List, Optional, Union

from .addressing import IPv4Address, IPv4Network, MacAddress
from .packet import Packet, Proto

__all__ = [
    "Match",
    "Rule",
    "FlowTable",
    "Group",
    "Bucket",
    "Action",
    "SetIpDst",
    "SetIpSrc",
    "SetEthDst",
    "Output",
    "OutputGroup",
    "ToController",
    "Drop",
    "HarmoniaRead",
]


def _as_network(value: Union[IPv4Address, IPv4Network, str, None]) -> Optional[IPv4Network]:
    if value is None or isinstance(value, IPv4Network):
        return value
    if isinstance(value, IPv4Address):
        return IPv4Network(value, 32)
    if isinstance(value, str):
        return IPv4Network(value) if "/" in value else IPv4Network(IPv4Address(value), 32)
    raise TypeError(f"cannot interpret {value!r} as an IP match")


@dataclass(frozen=True)
class Match:
    """Wildcard match over header fields; ``None`` means "don't care"."""

    in_port: Optional[int] = None
    eth_dst: Optional[MacAddress] = None
    ip_src: Optional[IPv4Network] = None
    ip_dst: Optional[IPv4Network] = None
    proto: Optional[Proto] = None
    dport: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "ip_src", _as_network(self.ip_src))
        object.__setattr__(self, "ip_dst", _as_network(self.ip_dst))
        # Precompiled (mask, value) int pairs: the flow-table scan calls
        # ``matches`` once per installed rule on every cache miss, so the
        # prefix checks must not pay IPv4Network.__contains__'s dispatch.
        src, dst = self.ip_src, self.ip_dst
        object.__setattr__(self, "_src_mask", None if src is None else src._netmask)
        object.__setattr__(self, "_src_val", None if src is None else src._value)
        object.__setattr__(self, "_dst_mask", None if dst is None else dst._netmask)
        object.__setattr__(self, "_dst_val", None if dst is None else dst._value)

    def matches(self, packet: Packet, in_port: Optional[int] = None) -> bool:
        if self.in_port is not None and in_port != self.in_port:
            return False
        mask = self._dst_mask
        if mask is not None and (packet.dst_ip._value & mask) != self._dst_val:
            return False
        mask = self._src_mask
        if mask is not None and (packet.src_ip._value & mask) != self._src_val:
            return False
        if self.eth_dst is not None and packet.dst_mac != self.eth_dst:
            return False
        if self.proto is not None and packet.proto is not self.proto:
            return False
        if self.dport is not None and packet.dport != self.dport:
            return False
        return True

    def __str__(self) -> str:  # pragma: no cover - debug aid
        parts = []
        for name in ("in_port", "eth_dst", "ip_src", "ip_dst", "proto", "dport"):
            v = getattr(self, name)
            if v is not None:
                parts.append(f"{name}={v}")
        return "Match(" + ", ".join(parts) + ")" if parts else "Match(*)"


class Action:
    """Base class for flow actions (applied in list order)."""

    __slots__ = ()


@dataclass(frozen=True)
class SetIpDst(Action):
    ip: IPv4Address

    def __post_init__(self) -> None:
        object.__setattr__(self, "ip", IPv4Address(self.ip))


@dataclass(frozen=True)
class SetIpSrc(Action):
    ip: IPv4Address

    def __post_init__(self) -> None:
        object.__setattr__(self, "ip", IPv4Address(self.ip))


@dataclass(frozen=True)
class SetEthDst(Action):
    mac: MacAddress


@dataclass(frozen=True)
class Output(Action):
    port: int


@dataclass(frozen=True)
class OutputGroup(Action):
    group_id: int


@dataclass(frozen=True)
class ToController(Action):
    pass


@dataclass(frozen=True)
class Drop(Action):
    pass


@dataclass(frozen=True)
class HarmoniaRead(Action):
    """Dirty-set-aware replica selection for gets (DESIGN.md §5j).

    ``choices`` holds one pre-planned action tuple per consistent replica
    of ``partition`` (each ends in an :class:`Output`); index 0 is the
    primary.  The switch resolves the choice *per packet* against its
    shared dirty-set registry: clean keys round-robin across all choices,
    dirty (or pinned) keys always take ``choices[0]`` — the conflict-free
    read rule of Harmonia (arXiv 1904.08964) on NICE's vring rules.
    """

    partition: int
    choices: tuple  # tuple of action tuples, primary first


_rule_seq = itertools.count(1)


@dataclass
class Rule:
    """A flow entry: priority + match + actions (+ optional idle timeout)."""

    match: Match
    actions: List[Action]
    priority: int = 100
    idle_timeout: Optional[float] = None
    cookie: str = ""
    seq: int = field(default_factory=lambda: next(_rule_seq))
    packets: int = 0
    bytes: int = 0
    last_used: float = 0.0

    def touch(self, packet: Packet, now: float) -> None:
        self.packets += 1
        self.bytes += packet.size_bytes
        self.last_used = now


def _rule_sort_key(rule: Rule) -> tuple:
    return (-rule.priority, rule.seq)


#: Sentinel distinguishing "cached table miss" (None) from "not cached".
_NOT_CACHED = object()


def flow_cache_enabled_default() -> bool:
    """Process-wide default for the exact-match cache.

    ``REPRO_DISABLE_FLOW_CACHE=1`` is the escape hatch used by the
    determinism regression tests and the perf harness to measure the
    wildcard-only slow path; anything else leaves the cache on.
    """
    return os.environ.get("REPRO_DISABLE_FLOW_CACHE", "") != "1"


class FlowTable:
    """Priority-ordered rule set with OpenFlow-like lookup semantics.

    Lookup returns the highest-priority matching rule; ties break on
    insertion order (deterministic).  The table enforces a capacity so the
    §4.6 switch-scalability analysis can be exercised for real.

    An exact-match flow cache (the Open vSwitch megaflow/microflow split,
    which the §5.1 OVS deployment relies on) fronts the wildcard table:
    the first lookup for a header tuple pays the linear scan, subsequent
    packets of the same flow hit a dict keyed on
    ``(in_port, eth_dst, src_ip, dst_ip, proto, dport)``.  Every table
    mutation (``add`` / ``remove`` / ``remove_by_cookie`` / ``expire_idle``)
    bumps a generation counter; a stale cache is discarded wholesale on the
    next lookup, so flow-mods and idle expiry invalidate correctly.  The
    cache is a pure memo over fields the wildcard match inspects, so it
    never changes which rule a packet selects — only how fast.
    """

    #: Cached exact-match entries before the memo is wiped (bounds memory on
    #: adversarial many-flow workloads; eviction-by-reset keeps determinism).
    CACHE_LIMIT = 65536

    def __init__(
        self,
        capacity: int = 128 * 1024,
        cache_enabled: Optional[bool] = None,
        owner=None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        #: The device (switch) this table belongs to, if any.  Only used to
        #: reach ``owner.sim.tracer`` for flow-mod trace events — the table
        #: itself has no simulator reference.
        self.owner = owner
        self._rules: List[Rule] = []
        self.cache_enabled = (
            flow_cache_enabled_default() if cache_enabled is None else cache_enabled
        )
        self._cache: dict = {}
        self._generation = 0
        self._cache_generation = 0
        self.cache_hits = 0
        self.cache_misses = 0

    def __len__(self) -> int:
        return len(self._rules)

    @property
    def rules(self) -> tuple:
        """Public snapshot of the rule list (copy; safe to hold)."""
        return tuple(self._rules)

    def iter_rules(self):
        """Internal read-only view for iteration-only callers (no copy).

        Callers must not mutate the table while iterating.
        """
        return iter(self._rules)

    @property
    def generation(self) -> int:
        """Bumped on every mutation; the cache is valid for one generation."""
        return self._generation

    def _trace_mod(self, name: str, **args) -> None:
        """Emit a flow-mod trace event via the owning switch (if traced)."""
        owner = self.owner
        if owner is None:
            return
        tr = owner.sim.tracer
        if tr is not None:
            tr.instant(name, "flowtable", node=owner.name, **args)

    def add(self, rule: Rule) -> Rule:
        if len(self._rules) >= self.capacity:
            raise OverflowError(
                f"flow table full ({self.capacity} entries) — see §4.6 scalability"
            )
        insort(self._rules, rule, key=_rule_sort_key)
        self._generation += 1
        self._trace_mod(
            "flow_add", cookie=rule.cookie, priority=rule.priority,
            match=str(rule.match), rules=len(self._rules),
        )
        return rule

    def remove(self, rule: Rule) -> None:
        try:
            self._rules.remove(rule)
        except ValueError:
            pass
        else:
            self._generation += 1
            self._trace_mod(
                "flow_remove", cookie=rule.cookie, rules=len(self._rules)
            )

    def remove_by_cookie(self, cookie: str) -> int:
        """Delete all rules tagged with ``cookie``; returns removal count."""
        before = len(self._rules)
        self._rules = [r for r in self._rules if r.cookie != cookie]
        removed = before - len(self._rules)
        if removed:
            self._generation += 1
            self._trace_mod(
                "flow_remove_cookie", cookie=cookie, removed=removed,
                rules=len(self._rules),
            )
        return removed

    def lookup(self, packet: Packet, in_port: Optional[int] = None) -> Optional[Rule]:
        if not self.cache_enabled:
            return self._scan(packet, in_port)
        if self._cache_generation != self._generation or len(self._cache) > self.CACHE_LIMIT:
            self._cache.clear()
            self._cache_generation = self._generation
        key = (
            in_port,
            packet.dst_mac,
            packet.src_ip,
            packet.dst_ip,
            packet.proto,
            packet.dport,
        )
        hit = self._cache.get(key, _NOT_CACHED)
        if hit is not _NOT_CACHED:
            self.cache_hits += 1
            return hit
        self.cache_misses += 1
        rule = self._scan(packet, in_port)
        self._cache[key] = rule
        return rule

    def _scan(self, packet: Packet, in_port: Optional[int]) -> Optional[Rule]:
        """The wildcard slow path: linear scan in priority order."""
        for rule in self._rules:
            if rule.match.matches(packet, in_port):
                return rule
        return None

    def expire_idle(self, now: float) -> int:
        """Evict rules idle past their timeout; returns eviction count."""
        keep = []
        evicted = 0
        for r in self._rules:
            if r.idle_timeout is not None and now - r.last_used > r.idle_timeout:
                evicted += 1
            else:
                keep.append(r)
        self._rules = keep
        if evicted:
            self._generation += 1
            self._trace_mod("flow_expire", evicted=evicted, rules=len(self._rules))
        return evicted


@dataclass(frozen=True)
class Bucket:
    """One multicast replication leg: rewrite actions then an output port."""

    actions: tuple
    port: int


@dataclass
class Group:
    """An OpenFlow ALL-type group: the packet is cloned into every bucket.

    This is the switch-level multicast primitive NICE uses for replication
    (§4.2): one ingress packet, one egress copy per replica port.
    """

    group_id: int
    buckets: List[Bucket] = field(default_factory=list)
    packets: int = 0

    def __len__(self) -> int:
        return len(self.buckets)
