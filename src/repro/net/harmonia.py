"""Switch-side dirty-set registry for Harmonia-mode reads (DESIGN.md §5j).

Harmonia (arXiv 1904.08964) lets the network serve strongly-consistent
reads from *any* replica: the switch tracks in-flight writes in a
dirty-set and only load-balances reads whose key has no write in flight;
dirty keys fall back to the primary, which serializes them behind the
write lock.  NICE's data plane already sees every message the dirty-set
needs — the multicast put, the 2PC commit/abort control multicasts and
the put reply all transit the rewriting switch — so the registry is fed
purely by passive observation in the switch pipeline, no protocol change.

One :class:`HarmoniaRegistry` is shared by every switch of a cluster
(the paper's switch state, factored out so a leaf–spine fabric behaves
like one logical switch).  Lifecycle of one put:

* first ``put`` data packet observed  -> ``op_id`` marked dirty on its key
* ``abort`` control multicast         -> entry cleared (nothing committed)
* ``put_reply status=ok``             -> entry cleared (every consistent
  replica applied before the primary's reply was sent)
* ``put_reply status=fail``           -> the key is *pinned* to the
  primary until the partition's next rule re-sync: some replica missed
  the commit, so only the primary is known-fresh (§4.4 drain guard)

The deliberately broken ``weak`` variant instead clears the entry when
the *commit* multicast transits — before the replicas have applied it —
reopening the stale-read window the chaos suite must catch.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

__all__ = ["HarmoniaRegistry"]

#: Resolved-op memory bound (mirrors the storage node's dedup caches).
_RESOLVED_LIMIT = 4096


class HarmoniaRegistry:
    """Cluster-wide dirty-set, pin-set and round-robin state."""

    def __init__(self, ring, weak: bool = False):
        #: The unicast vring — key -> partition (uni and mc share the
        #: key -> subgroup mapping, so either ring works).
        self.ring = ring
        #: Weakened variant: clear on commit *transit* (see module doc).
        self.weak = bool(weak)
        #: op_id -> key, for every put currently in flight.
        self._key_of: Dict[Tuple, str] = {}
        #: key -> set of in-flight op_ids writing it.
        self._dirty: Dict[str, Set[Tuple]] = {}
        #: key -> partition, for keys stuck on the primary after a failed
        #: put; cleared by :meth:`on_sync` for that partition.
        self._pinned: Dict[str, int] = {}
        #: op_ids already resolved (dedups the same message observed at
        #: several switches, and late data-packet copies).  Insertion
        #: ordered; oldest entries are evicted at the bound.
        self._resolved: Dict[Tuple, bool] = {}
        #: partition -> round-robin cursor for clean reads.
        self._rr: Dict[int, int] = {}
        # Observation counters (obs/figure plumbing reads these).
        self.marks = 0
        self.clears = 0
        self.pins = 0
        self.balanced_reads = 0
        self.fallback_reads = 0

    # -- pipeline observation hook -----------------------------------------
    def observe(self, packet) -> None:
        """Feed one transiting packet; idempotent per logical message."""
        payload = packet.payload
        if type(payload) is tuple:
            if not payload:
                return
            kind = payload[0]
            if kind == "mc_data" and len(payload) >= 4:
                body = payload[3]
                if isinstance(body, dict) and body.get("type") == "put":
                    self._mark(tuple(body["op_id"]), body["key"])
            elif kind == "mc_ctrl" and len(payload) >= 2:
                body = payload[1]
                if isinstance(body, dict):
                    mtype = body.get("type")
                    if mtype == "abort":
                        self._resolve(tuple(body["op_id"]), pin=False)
                    elif mtype == "commit" and self.weak:
                        # WEAK VARIANT: the commit is still in flight to
                        # the replicas — clearing now races their apply.
                        self._resolve(tuple(body["op_id"]), pin=False)
        elif isinstance(payload, dict) and payload.get("kind") == "data":
            body = payload.get("payload")
            if isinstance(body, dict) and body.get("type") == "put_reply":
                op_id = tuple(body["op_id"])
                self._resolve(op_id, pin=body.get("status") != "ok")

    def _mark(self, op_id: Tuple, key: str) -> None:
        if op_id in self._resolved or op_id in self._key_of:
            return
        self._key_of[op_id] = key
        self._dirty.setdefault(key, set()).add(op_id)
        self.marks += 1

    def _resolve(self, op_id: Tuple, pin: bool) -> None:
        if op_id in self._resolved:
            return
        self._resolved[op_id] = True
        if len(self._resolved) > _RESOLVED_LIMIT:
            self._resolved.pop(next(iter(self._resolved)))
        key = self._key_of.pop(op_id, None)
        if key is None:
            return
        ops = self._dirty.get(key)
        if ops is not None:
            ops.discard(op_id)
            if not ops:
                del self._dirty[key]
        self.clears += 1
        if pin:
            self._pinned[key] = self.ring.subgroup_of_key(key)
            self.pins += 1

    # -- read-path queries ---------------------------------------------------
    def is_dirty(self, key: Optional[str]) -> bool:
        """Must this key's reads go to the primary right now?"""
        if key is None:
            return True  # unparseable get: be conservative
        return key in self._dirty or key in self._pinned

    def next_index(self, partition: int, n: int) -> int:
        """Round-robin cursor for a clean read over ``n`` replicas."""
        i = self._rr.get(partition, 0)
        self._rr[partition] = i + 1
        return i % n

    # -- control-plane lifecycle ---------------------------------------------
    def on_sync(self, partition: int) -> None:
        """A rule re-sync for ``partition`` landed: post-sync rules only
        target get-visible replicas (and the §4.4 server-side drain guards
        forward anything stale), so pins and leftover in-flight entries of
        the partition — e.g. a put whose reply was lost — can drop."""
        for key in [k for k, p in self._pinned.items() if p == partition]:
            del self._pinned[key]
        stale = [
            op_id
            for op_id, key in self._key_of.items()
            if self.ring.subgroup_of_key(key) == partition
        ]
        for op_id in stale:
            key = self._key_of.pop(op_id)
            ops = self._dirty.get(key)
            if ops is not None:
                ops.discard(op_id)
                if not ops:
                    del self._dirty[key]

    # -- introspection ---------------------------------------------------------
    def dirty_keys(self) -> Set[str]:
        return set(self._dirty) | set(self._pinned)

    def stats(self) -> Dict[str, int]:
        return {
            "marks": self.marks,
            "clears": self.clears,
            "pins": self.pins,
            "balanced_reads": self.balanced_reads,
            "fallback_reads": self.fallback_reads,
            "inflight": len(self._key_of),
            "pinned": len(self._pinned),
        }
