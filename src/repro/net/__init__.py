"""Network substrate: addressing, packets, links, hosts and OpenFlow switches."""

from .addressing import IPv4Address, IPv4Network, MacAddress, MULTICAST_NET
from .arp import ArpEntry, ArpTable, make_arp_request
from .controlplane import ControlPlane, ControllerApp
from .flowtable import (
    Action,
    Bucket,
    Drop,
    FlowTable,
    Group,
    Match,
    Output,
    OutputGroup,
    Rule,
    SetEthDst,
    SetIpDst,
    HarmoniaRead,
    SetIpSrc,
    ToController,
)
from .harmonia import HarmoniaRegistry
from .host import Host
from .link import Channel, GBPS, Link, MBPS, Port
from .packet import HEADER_BYTES, MTU_BYTES, Packet, Proto, wire_size
from .switch import FLOOD, OpenFlowSwitch
from .topology import Device, LeafSpineFabric, Network, ecmp_index

__all__ = [
    "Action",
    "ArpEntry",
    "ArpTable",
    "Bucket",
    "Channel",
    "ControlPlane",
    "ControllerApp",
    "Device",
    "LeafSpineFabric",
    "ecmp_index",
    "Drop",
    "FLOOD",
    "FlowTable",
    "GBPS",
    "Group",
    "HarmoniaRead",
    "HarmoniaRegistry",
    "HEADER_BYTES",
    "Host",
    "IPv4Address",
    "IPv4Network",
    "Link",
    "MBPS",
    "MTU_BYTES",
    "MULTICAST_NET",
    "MacAddress",
    "Match",
    "Network",
    "OpenFlowSwitch",
    "Output",
    "OutputGroup",
    "Packet",
    "Port",
    "Proto",
    "Rule",
    "SetEthDst",
    "SetIpDst",
    "SetIpSrc",
    "ToController",
    "wire_size",
    "make_arp_request",
]
