"""IPv4 and MAC addressing, including prefix (CIDR) matching.

The NICE design leans on prefix matching: virtual-ring subgroups are
power-of-two IP ranges (§3.2), and the load balancer divides the *client*
address space into power-of-two source prefixes (§4.5).  These classes give
OpenFlow-style longest-prefix semantics to the simulated switches.
"""

from __future__ import annotations

from typing import Iterator, Union

__all__ = ["IPv4Address", "IPv4Network", "MacAddress", "MULTICAST_NET"]


class IPv4Address:
    """An immutable IPv4 address (value type, hashable, orderable)."""

    __slots__ = ("_value",)

    def __init__(self, value: Union[int, str, "IPv4Address"]):
        if isinstance(value, IPv4Address):
            self._value = value._value
            return
        if isinstance(value, str):
            parts = value.split(".")
            if len(parts) != 4:
                raise ValueError(f"malformed IPv4 address: {value!r}")
            acc = 0
            for p in parts:
                octet = int(p)
                if not 0 <= octet <= 255:
                    raise ValueError(f"malformed IPv4 address: {value!r}")
                acc = (acc << 8) | octet
            self._value = acc
            return
        if isinstance(value, int):
            if not 0 <= value <= 0xFFFFFFFF:
                raise ValueError(f"IPv4 address out of range: {value:#x}")
            self._value = value
            return
        raise TypeError(f"cannot build IPv4Address from {type(value).__name__}")

    @property
    def value(self) -> int:
        return self._value

    @property
    def is_multicast(self) -> bool:
        """True for 224.0.0.0/4 (IP multicast group addresses)."""
        return (self._value >> 28) == 0xE

    def __str__(self) -> str:
        v = self._value
        return f"{v >> 24 & 255}.{v >> 16 & 255}.{v >> 8 & 255}.{v & 255}"

    def __repr__(self) -> str:
        return f"IPv4Address({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IPv4Address) and self._value == other._value

    def __lt__(self, other: "IPv4Address") -> bool:
        return self._value < other._value

    def __le__(self, other: "IPv4Address") -> bool:
        return self._value <= other._value

    def __hash__(self) -> int:
        return hash(self._value)

    def __add__(self, offset: int) -> "IPv4Address":
        return IPv4Address(self._value + offset)

    def __sub__(self, other: "IPv4Address") -> int:
        return self._value - other._value


class IPv4Network:
    """A CIDR prefix, e.g. ``IPv4Network("10.10.1.0/24")``."""

    __slots__ = ("address", "prefixlen", "_netmask", "_value")

    def __init__(self, spec: Union[str, "IPv4Network"], prefixlen: int = None):
        if isinstance(spec, IPv4Network):
            self.address, self.prefixlen = spec.address, spec.prefixlen
        elif isinstance(spec, str) and prefixlen is None:
            addr, _, plen = spec.partition("/")
            if not plen:
                raise ValueError(f"missing prefix length in {spec!r}")
            self.address = IPv4Address(addr)
            self.prefixlen = int(plen)
        else:
            self.address = IPv4Address(spec)  # type: ignore[arg-type]
            self.prefixlen = int(prefixlen)  # type: ignore[arg-type]
        if not 0 <= self.prefixlen <= 32:
            raise ValueError(f"invalid prefix length: {self.prefixlen}")
        self._netmask = (0xFFFFFFFF << (32 - self.prefixlen)) & 0xFFFFFFFF if self.prefixlen else 0
        if self.address.value & ~self._netmask & 0xFFFFFFFF:
            # Normalize to the network address so equality behaves sanely.
            self.address = IPv4Address(self.address.value & self._netmask)
        #: The (already-masked) network address as a bare int — the flow
        #: table's scan loop compares against this without attribute chains.
        self._value = self.address._value

    @property
    def num_addresses(self) -> int:
        return 1 << (32 - self.prefixlen)

    def __contains__(self, addr: Union[IPv4Address, str]) -> bool:
        if type(addr) is not IPv4Address:
            addr = IPv4Address(addr)
        return (addr._value & self._netmask) == self._value

    def overlaps(self, other: "IPv4Network") -> bool:
        shorter = self if self.prefixlen <= other.prefixlen else other
        longer = other if shorter is self else self
        return longer.address in shorter

    def subnets(self, new_prefixlen: int) -> Iterator["IPv4Network"]:
        """Yield the subdivisions of this prefix at ``new_prefixlen``."""
        if new_prefixlen < self.prefixlen or new_prefixlen > 32:
            raise ValueError(
                f"cannot split /{self.prefixlen} into /{new_prefixlen} subnets"
            )
        step = 1 << (32 - new_prefixlen)
        for base in range(self.address.value, self.address.value + self.num_addresses, step):
            yield IPv4Network(IPv4Address(base), new_prefixlen)

    def hosts(self) -> Iterator[IPv4Address]:
        """Yield every address in the prefix (simulation: no net/bcast carve-out)."""
        for v in range(self.address.value, self.address.value + self.num_addresses):
            yield IPv4Address(v)

    def __str__(self) -> str:
        return f"{self.address}/{self.prefixlen}"

    def __repr__(self) -> str:
        return f"IPv4Network({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IPv4Network)
            and self.address == other.address
            and self.prefixlen == other.prefixlen
        )

    def __hash__(self) -> int:
        return hash((self.address, self.prefixlen))


#: All IP multicast groups.
MULTICAST_NET = IPv4Network("224.0.0.0/4")


class MacAddress:
    """An immutable 48-bit MAC address."""

    __slots__ = ("_value",)

    BROADCAST: "MacAddress"

    def __init__(self, value: Union[int, str, "MacAddress"]):
        if isinstance(value, MacAddress):
            self._value = value._value
        elif isinstance(value, str):
            parts = value.split(":")
            if len(parts) != 6:
                raise ValueError(f"malformed MAC address: {value!r}")
            self._value = int("".join(parts), 16)
        elif isinstance(value, int):
            if not 0 <= value <= 0xFFFFFFFFFFFF:
                raise ValueError(f"MAC address out of range: {value:#x}")
            self._value = value
        else:
            raise TypeError(f"cannot build MacAddress from {type(value).__name__}")

    @property
    def value(self) -> int:
        return self._value

    @property
    def is_broadcast(self) -> bool:
        return self._value == 0xFFFFFFFFFFFF

    def __str__(self) -> str:
        raw = f"{self._value:012x}"
        return ":".join(raw[i : i + 2] for i in range(0, 12, 2))

    def __repr__(self) -> str:
        return f"MacAddress({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MacAddress) and self._value == other._value

    def __hash__(self) -> int:
        return hash(("mac", self._value))


MacAddress.BROADCAST = MacAddress(0xFFFFFFFFFFFF)
