"""Controller-side ARP machinery.

The NICEKV controller implements an L3 learning switch (§5, Mapping
Service): it learns which (IP, MAC) lives behind which switch port, ARPs
for unknown addresses while buffering the triggering packet, and rate-limits
ARP floods by remembering recently-queried addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .addressing import IPv4Address, MacAddress
from .packet import Packet, Proto

__all__ = ["ArpEntry", "ArpTable", "make_arp_request"]


@dataclass(frozen=True)
class ArpEntry:
    """Learned location of a host: its MAC and the switch port it sits on."""

    ip: IPv4Address
    mac: MacAddress
    switch_name: str
    port_no: int


class ArpTable:
    """IP → location map plus pending-query bookkeeping."""

    def __init__(self, reask_interval_s: float = 1.0):
        self._entries: Dict[IPv4Address, ArpEntry] = {}
        #: IPs we recently broadcast a request for, with the ask time —
        #: "keeps a list of recently ARPed addresses to avoid flooding" (§5).
        self._recently_asked: Dict[IPv4Address, float] = {}
        self.reask_interval_s = reask_interval_s
        #: Monotonic mutation counter: anything derived from host locations
        #: (the controller's plan cache and host→switch indexes) keys its
        #: validity on this.
        self.generation = 0

    def learn(self, ip: IPv4Address, mac: MacAddress, switch_name: str, port_no: int) -> ArpEntry:
        entry = ArpEntry(ip, mac, switch_name, port_no)
        self._entries[ip] = entry
        self._recently_asked.pop(ip, None)
        self.generation += 1
        return entry

    def forget(self, ip: IPv4Address) -> None:
        if self._entries.pop(ip, None) is not None:
            self.generation += 1

    def lookup(self, ip: IPv4Address) -> Optional[ArpEntry]:
        return self._entries.get(ip)

    def should_ask(self, ip: IPv4Address, now: float) -> bool:
        """True if we may broadcast another request for ``ip`` now."""
        last = self._recently_asked.get(ip)
        if last is not None and now - last < self.reask_interval_s:
            return False
        self._recently_asked[ip] = now
        return True

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> Tuple[ArpEntry, ...]:
        return tuple(self._entries.values())


def make_arp_request(requester_ip: IPv4Address, requester_mac: MacAddress, target_ip: IPv4Address) -> Packet:
    """Build a broadcast ARP who-has packet."""
    return Packet(
        src_ip=requester_ip,
        dst_ip=target_ip,
        proto=Proto.ARP,
        payload={"op": "request", "target_ip": target_ip},
        payload_bytes=28,
        src_mac=requester_mac,
        dst_mac=MacAddress.BROADCAST,
    )
