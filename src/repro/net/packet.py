"""The packet model.

Packets carry real header fields (the switch matches and rewrites them, as
OpenFlow does) plus an opaque ``payload`` object for protocol messages.

Two granularities share this one class (see DESIGN.md §5):

* *control packets* — requests, acks, heartbeats: ``payload_bytes`` small,
  one simulator event per hop.
* *flow bursts* — bulk data: one Packet represents the whole chunked
  transfer; ``payload_bytes`` is the object size and the wire size accounts
  for one header per MTU-sized chunk, so link-load byte counters match what
  the real chunked transfer would generate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, List, Optional, Tuple

from .addressing import IPv4Address, MacAddress

__all__ = ["Packet", "Proto", "MTU_BYTES", "HEADER_BYTES", "wire_size"]

#: Chunk payload ceiling used by the NICEKV reliable multicast transport
#: (§5: "each less than a single network MTU (1400 bytes)").
MTU_BYTES = 1400

#: Ethernet + IPv4 + UDP/TCP header overhead per chunk (14+20+20 rounded up
#: with preamble/FCS).
HEADER_BYTES = 66


def wire_size(payload_bytes: int) -> int:
    """Total bytes on the wire for ``payload_bytes`` of application data,
    accounting for per-MTU-chunk headers.  Zero-byte messages still cost one
    header (e.g. pure acks)."""
    if payload_bytes < 0:
        raise ValueError(f"negative payload size: {payload_bytes}")
    chunks = max(1, -(-payload_bytes // MTU_BYTES))
    return payload_bytes + chunks * HEADER_BYTES


class Proto(Enum):
    """L3/L4 protocol discriminator for flow-table matching."""

    UDP = "udp"
    TCP = "tcp"
    ARP = "arp"

    def __repr__(self) -> str:  # pragma: no cover
        return f"Proto.{self.name}"


_uid = itertools.count(1)


@dataclass
class Packet:
    """A simulated packet / flow burst."""

    src_ip: IPv4Address
    dst_ip: IPv4Address
    proto: Proto
    sport: int = 0
    dport: int = 0
    payload: Any = None
    payload_bytes: int = 0
    src_mac: Optional[MacAddress] = None
    dst_mac: Optional[MacAddress] = None
    uid: int = field(default_factory=lambda: next(_uid))
    #: Forwarding trace (device names) — used by routing tests and to assert
    #: single-hop claims; appended by switches and hosts.
    trace: List[str] = field(default_factory=list)
    #: Original (virtual) destination before any switch rewrite; set by the
    #: first SetIpDst action so replies can echo the vnode a client targeted.
    virtual_dst: Optional[IPv4Address] = None

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError(f"negative payload size: {self.payload_bytes}")
        # payload_bytes is immutable after construction, so the wire size is
        # computed once (it is re-read on every link transmit and rule touch).
        self._wire_size = wire_size(self.payload_bytes)

    @property
    def size_bytes(self) -> int:
        """Bytes this packet occupies on a wire (chunk headers included)."""
        return self._wire_size

    def copy(self) -> "Packet":
        """Independent copy for multicast fan-out (fresh uid, shared payload).

        Clones the instance dict directly rather than via
        ``dataclasses.replace`` — this runs once per replication leg per
        packet, and replace()'s re-validation showed up in profiles.
        """
        new = object.__new__(Packet)
        new.__dict__.update(self.__dict__)
        new.uid = next(_uid)
        new.trace = list(self.trace)
        return new

    def flow_key(self) -> Tuple:
        """(src, dst, proto, sport, dport) — connection identification."""
        return (self.src_ip, self.dst_ip, self.proto, self.sport, self.dport)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Packet#{self.uid} {self.proto.name} {self.src_ip}:{self.sport} -> "
            f"{self.dst_ip}:{self.dport} {self.payload_bytes}B>"
        )
