"""End hosts.

A host owns one access port, an IP/MAC identity, a liveness flag (failure
injection black-holes all traffic at the NIC, modeling a crashed or
disconnected machine per the §4.4 transient-failure model), and a protocol
stack installed by :mod:`repro.transport`.

Hosts answer ARP requests for their own IP so the controller's L3 learning
switch can discover them (§5, Mapping Service).
"""

from __future__ import annotations

from typing import Optional

from ..sim import Counter, Simulator
from .addressing import IPv4Address, MacAddress
from .link import Port
from .packet import Packet, Proto
from .topology import Device

__all__ = ["Host"]


class Host(Device):
    """A simulated machine with a single NIC."""

    def __init__(self, sim: Simulator, name: str, ip: IPv4Address, mac: MacAddress):
        super().__init__(sim, name)
        self.ip = IPv4Address(ip)
        self.mac = MacAddress(mac)
        self.up = True
        self.stack = None  # repro.transport.ProtocolStack, installed later
        self.tx_bytes = Counter(f"{name}.tx_bytes")
        self.rx_bytes = Counter(f"{name}.rx_bytes")

    @property
    def port(self) -> Port:
        """The host's single access port (created on first use)."""
        if not self.ports:
            self.new_port()
        return self.ports[1]

    # -- failure injection -----------------------------------------------------
    def fail(self) -> None:
        """Crash/disconnect: NIC black-holes all traffic from now on."""
        self.up = False

    def recover(self) -> None:
        """Power back on (application state handled by the storage layer)."""
        self.up = True

    # -- data path ---------------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Stamp L2/L3 source fields and transmit; silently dropped if down."""
        if not self.up:
            return
        if packet.src_mac is None:
            packet.src_mac = self.mac
        self.tx_bytes.add(packet.size_bytes)
        packet.trace.append(self.name)
        self.port.send(packet)

    def handle_packet(self, packet: Packet, in_port: Port) -> None:
        if not self.up:
            return
        self.rx_bytes.add(packet.size_bytes)
        if packet.proto == Proto.ARP:
            self._handle_arp(packet)
            return
        packet.trace.append(self.name)
        if self.stack is not None:
            self.stack.deliver(packet)

    # -- ARP ----------------------------------------------------------------------
    def _handle_arp(self, packet: Packet) -> None:
        body = packet.payload or {}
        if body.get("op") == "request" and body.get("target_ip") == self.ip:
            reply = Packet(
                src_ip=self.ip,
                dst_ip=packet.src_ip,
                proto=Proto.ARP,
                payload={"op": "reply", "sender_ip": self.ip, "sender_mac": self.mac},
                payload_bytes=28,
                dst_mac=packet.src_mac,
            )
            self.send(reply)
        elif body.get("op") == "reply" and self.stack is not None:
            packet.trace.append(self.name)
            self.stack.deliver(packet)
