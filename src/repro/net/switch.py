"""The OpenFlow-enabled switch.

Forwarding pipeline: per-packet lookup latency, then highest-priority rule
wins; its action list runs in order (header rewrites, then output /
group-multicast / controller).  A table miss raises a *packet-in* to the
attached controller and buffers the packet, exactly as OpenFlow reason
``NO_MATCH`` does; the controller later releases or drops the buffer.

Hardware vs software switching (§5.1 deployment experience): hardware
lookup is ~5 µs; the one switch the authors found that could rewrite
headers did it in software, three orders of magnitude slower — modeled by
``software_rewrite_penalty`` so that ablation is runnable.
"""

from __future__ import annotations

import itertools
import os
from typing import Dict, List, Optional, Tuple

from ..obs.tracer import packet_op
from ..sim import Counter, Simulator
from .flowtable import (
    Action,
    Drop,
    FlowTable,
    Group,
    HarmoniaRead,
    Output,
    OutputGroup,
    Rule,
    SetEthDst,
    SetIpDst,
    SetIpSrc,
    ToController,
)
from .link import Port, transmit_fanout
from .packet import Packet, Proto

#: Hoisted enum member: the approx-mode exempt check runs per packet.
_ARP = Proto.ARP
from .topology import Device

__all__ = ["OpenFlowSwitch", "FLOOD"]

#: Pseudo-port: flood out of every port except the ingress.
FLOOD = -1

#: Bucket actions the vectorized fan-out path knows how to apply inline;
#: any other action type sends the whole group down the generic loop.
_SIMPLE_REWRITES = (SetIpDst, SetIpSrc, SetEthDst)


class OpenFlowSwitch(Device):
    """A programmable switch with a flow table and a group (multicast) table."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        lookup_latency_s: float = 5e-6,
        table_capacity: int = 128 * 1024,
        rewrite_penalty_s: float = 0.0,
    ):
        super().__init__(sim, name)
        self.table = FlowTable(capacity=table_capacity, owner=self)
        self.groups: Dict[int, Group] = {}
        self.lookup_latency_s = lookup_latency_s
        #: Extra per-packet delay when a rule rewrites headers — 0 for the
        #: client-side OVS deployment; set large to model the software-path
        #: hardware switch of §5.1.
        self.rewrite_penalty_s = rewrite_penalty_s
        self.controller = None  # set by ControlPlane.attach
        #: Escape hatch for the batching bit-identity test: setting
        #: ``REPRO_NO_TX_BATCH=1`` at build time forces per-receiver
        #: delivery chains, which must produce identical results.
        self._batch_fanout = os.environ.get("REPRO_NO_TX_BATCH") != "1"
        self._buffer_ids = itertools.count(1)
        self._buffered: Dict[int, Tuple[Packet, int]] = {}
        self.forwarded = Counter(f"{name}.forwarded")
        self.table_misses = Counter(f"{name}.table_misses")
        self.dropped = Counter(f"{name}.dropped")
        #: Highest controller epoch seen on this switch.  Flow-mods stamped
        #: with an older epoch come from a deposed controller/metadata
        #: leader and are fenced (§4.4-style zombie guard for the control
        #: plane).  0 accepts everything until a stamped message arrives.
        self.control_epoch = 0
        self.fenced_mods = Counter(f"{name}.fenced_mods")
        #: Shared dirty-set registry when the cluster runs in Harmonia
        #: mode (DESIGN.md §5j); None keeps the NICE read path untouched.
        self._harmonia = None

    # -- data plane ---------------------------------------------------------
    def handle_packet(self, packet: Packet, in_port: Port) -> None:
        sim = self.sim
        if sim.approx_mode and (
            packet.dport not in sim.approx_exempt_ports
            and packet.sport not in sim.approx_exempt_ports
            and packet.proto is not _ARP
        ):
            # Flow-approximation (DESIGN.md §5g): data-plane lookups run
            # inline instead of costing a heap event each; the ~5 µs lookup
            # latency is folded away (orders of magnitude below the put
            # path's service times, inside approx's ±5% envelope).
            self._pipeline(packet, in_port.number)
            return
        sim.call_in(self.lookup_latency_s, self._pipeline, packet, in_port.number)

    def _pipeline(self, packet: Packet, in_port_no: int) -> None:
        if self._harmonia is not None:
            self._harmonia.observe(packet)
        rule = self.table.lookup(packet, in_port_no)
        tr = self.sim.tracer
        if rule is None:
            if tr is not None:
                tr.instant(
                    "table_miss", "switch", node=self.name,
                    op=packet_op(packet.payload), dst=packet.dst_ip,
                )
            self._packet_in(packet, in_port_no)
            return
        rule.touch(packet, self.sim.now)
        packet.trace.append(self.name)
        if tr is not None:
            tr.instant(
                "rule_hit", "switch", node=self.name,
                op=packet_op(packet.payload), cookie=rule.cookie,
                priority=rule.priority, dst=packet.dst_ip,
            )
        self.apply_actions(packet, rule.actions, in_port_no)

    def apply_actions(self, packet: Packet, actions, in_port_no: int) -> None:
        """Run an action list on ``packet`` (used by rules and packet-out)."""
        rewrote = False
        for action in actions:
            if isinstance(action, SetIpDst):
                if packet.virtual_dst is None:
                    packet.virtual_dst = packet.dst_ip
                tr = self.sim.tracer
                if tr is not None:
                    tr.instant(
                        "rewrite", "switch", node=self.name,
                        op=packet_op(packet.payload),
                        field="ip_dst", old=packet.dst_ip, new=action.ip,
                    )
                packet.dst_ip = action.ip
                rewrote = True
            elif isinstance(action, SetIpSrc):
                packet.src_ip = action.ip
                rewrote = True
            elif isinstance(action, SetEthDst):
                packet.dst_mac = action.mac
                rewrote = True
            elif isinstance(action, Output):
                self._output(packet.copy(), action.port, in_port_no, rewrote)
            elif isinstance(action, OutputGroup):
                self._output_group(packet, action.group_id, in_port_no, rewrote)
            elif isinstance(action, ToController):
                self._packet_in(packet, in_port_no)
            elif isinstance(action, HarmoniaRead):
                self.apply_actions(
                    packet, self._harmonia_choice(packet, action), in_port_no
                )
            elif isinstance(action, Drop):
                self.dropped.add()
                return
            else:
                raise TypeError(f"{self.name}: unknown action {action!r}")

    def _harmonia_choice(self, packet: Packet, action: HarmoniaRead):
        """Resolve a :class:`HarmoniaRead` per packet (DESIGN.md §5j).

        Clean keys round-robin over every planned replica leg; dirty or
        pinned keys — and anything we cannot attribute to a key — take
        ``choices[0]``, the primary.  With no registry attached (a rule
        outliving a mode change) the primary leg is the safe default.
        """
        choices = action.choices
        reg = self._harmonia
        if reg is None or len(choices) == 1:
            return choices[0]
        payload = packet.payload
        key = payload.get("key") if isinstance(payload, dict) else None
        if reg.is_dirty(key):
            reg.fallback_reads += 1
            tr = self.sim.tracer
            if tr is not None:
                tr.instant(
                    "harmonia_fallback", "switch", node=self.name,
                    key=key, partition=action.partition,
                )
            return choices[0]
        reg.balanced_reads += 1
        return choices[reg.next_index(action.partition, len(choices))]

    def _output(self, packet: Packet, port_no: int, in_port_no: int, rewrote: bool) -> None:
        delay = self.rewrite_penalty_s if rewrote else 0.0
        if port_no == FLOOD:
            for no, port in self.ports.items():
                if no != in_port_no and port.link is not None:
                    self._emit(packet.copy(), port, delay)
            return
        port = self.ports.get(port_no)
        if port is None or port.link is None:
            self.dropped.add()
            return
        self._emit(packet, port, delay)

    def _emit(self, packet: Packet, port: Port, delay: float) -> None:
        self.forwarded.add()
        if delay > 0:
            self.sim.call_in(delay, port.send, packet)
        else:
            port.send(packet)

    def _output_group(self, packet: Packet, group_id: int, in_port_no: int, rewrote: bool) -> None:
        group = self.groups.get(group_id)
        if group is None:
            self.dropped.add()
            return
        group.packets += 1
        tr = self.sim.tracer
        if tr is not None:
            tr.instant(
                "mc_fanout", "switch", node=self.name,
                op=packet_op(packet.payload), group=group_id,
                buckets=len(group.buckets),
            )
        buckets = group.buckets
        if (
            len(buckets) > 1
            and self._batch_fanout
            and self.rewrite_penalty_s == 0.0
        ):
            for bucket in buckets:
                for action in bucket.actions:
                    if type(action) not in _SIMPLE_REWRITES:
                        break
                else:
                    continue
                break
            else:
                self._output_group_fast(packet, buckets, tr)
                return
        for bucket in buckets:
            clone = packet.copy()
            self.apply_actions(clone, list(bucket.actions) + [Output(bucket.port)], in_port_no)

    def _output_group_fast(self, packet: Packet, buckets, tr) -> None:
        """Batched fan-out: one clone per leg, one shared transmit chain.

        Semantically identical to running ``apply_actions`` per bucket (the
        caller has verified every bucket action is a plain header rewrite
        and the rewrite penalty is zero), but the R legs share one
        vectorized grant/serialize/finish chain when their channels are all
        idle, distinct and equal-bandwidth — otherwise every leg falls back
        to its own (still pooled) transmit chain, so chaos cases like
        per-link throttling keep their exact event order.  Approx mode
        never batches: ``Channel.transmit`` routes each leg through its
        analytic service-rate path instead.
        """
        legs = []
        batchable = not self.sim.approx_mode
        bandwidth = 0.0
        for bucket in buckets:
            clone = packet.copy()
            for action in bucket.actions:
                cls = type(action)
                if cls is SetIpDst:
                    if clone.virtual_dst is None:
                        clone.virtual_dst = clone.dst_ip
                    if tr is not None:
                        tr.instant(
                            "rewrite", "switch", node=self.name,
                            op=packet_op(clone.payload),
                            field="ip_dst", old=clone.dst_ip, new=action.ip,
                        )
                    clone.dst_ip = action.ip
                elif cls is SetIpSrc:
                    clone.src_ip = action.ip
                else:  # SetEthDst (caller verified the action set)
                    clone.dst_mac = action.mac
            port = self.ports.get(bucket.port)
            if port is None or port.link is None:
                self.dropped.add()
                continue
            self.forwarded.add()
            channel = port.link.channel_from(port)
            if legs:
                if channel.bandwidth_bps != bandwidth:
                    batchable = False
            else:
                bandwidth = channel.bandwidth_bps
            if channel._sending or channel._queue:
                batchable = False
            legs.append((channel, clone))
        if len(legs) > 1 and batchable:
            seen = {id(ch) for ch, _ in legs}
            if len(seen) == len(legs):
                transmit_fanout(self.sim, legs)
                return
        for channel, clone in legs:
            channel.transmit(clone)

    # -- controller interaction ----------------------------------------------
    def _packet_in(self, packet: Packet, in_port_no: int) -> None:
        self.table_misses.add()
        if self.controller is None:
            self.dropped.add()
            return
        buffer_id = next(self._buffer_ids)
        self._buffered[buffer_id] = (packet, in_port_no)
        self.controller.channel.packet_in(self, packet, in_port_no, buffer_id)

    def release_buffered(self, buffer_id: int) -> None:
        """Re-run the pipeline for a buffered packet (post flow-mod)."""
        entry = self._buffered.pop(buffer_id, None)
        if entry is not None:
            self._pipeline(*entry)

    def drop_buffered(self, buffer_id: int) -> None:
        if self._buffered.pop(buffer_id, None) is not None:
            self.dropped.add()

    @property
    def buffered_count(self) -> int:
        return len(self._buffered)

    # -- table management (invoked via the control plane) ---------------------
    def accept_epoch(self, epoch: Optional[int]) -> bool:
        """Epoch fence for control messages.

        ``None`` means an unstamped (legacy / reactive) message and always
        passes; otherwise the message is accepted only if it is at least as
        new as the highest epoch seen, and the switch adopts that epoch.
        """
        if epoch is None:
            return True
        if epoch < self.control_epoch:
            self.fenced_mods.add()
            tr = self.sim.tracer
            if tr is not None:
                tr.instant(
                    "fenced_mod", "ctrl", node=self.name,
                    epoch=epoch, current=self.control_epoch,
                )
            return False
        self.control_epoch = epoch
        return True

    def install_rule(self, rule: Rule) -> Rule:
        return self.table.add(rule)

    def remove_rule(self, rule: Rule) -> None:
        self.table.remove(rule)

    def remove_cookie(self, cookie: str) -> int:
        return self.table.remove_by_cookie(cookie)

    def install_group(self, group: Group) -> Group:
        self.groups[group.group_id] = group
        return group

    def remove_group(self, group_id: int) -> None:
        self.groups.pop(group_id, None)
