"""Reproduction of *NICE: Network-Integrated Cluster-Efficient Storage*
(Al-Kiswany et al., HPDC 2017) on a deterministic discrete-event simulator.

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

__version__ = "1.0.0"
