"""Per-object in-memory locks (§4.3: "Object locks are maintained in
memory only").

A replica locks the object between receiving the put data and receiving
the commit timestamp.  After a primary failure, the new primary enumerates
locked objects across the replica set to decide commit-vs-abort (§4.4),
so the table exposes exactly that enumeration.

Contended acquisitions queue FIFO (:meth:`LockTable.request`).  Grant
order therefore follows arrival order — which, for NICE, the switch makes
*identical on every replica* (one multicast serialization point), so
concurrent puts to one object cannot deadlock across the replica set.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

__all__ = ["LockTable"]


class LockTable:
    """Non-reentrant per-key locks, owner-tracked, memory-only."""

    def __init__(self) -> None:
        self._owners: Dict[str, Tuple] = {}
        self._queues: Dict[str, Deque] = {}

    def acquire(self, key: str, op_id: Tuple) -> bool:
        """Take the lock for ``op_id``; False if another op holds it.

        Re-acquiring under the same op (a retried multicast) succeeds.
        """
        owner = self._owners.get(key)
        if owner is None or owner == op_id:
            self._owners[key] = op_id
            return True
        return False

    def request(self, sim, key: str, op_id: Tuple):
        """FIFO blocking acquisition: returns an Event that triggers when
        ``op_id`` holds the lock.  Re-requesting under the holding op
        triggers immediately."""
        from ..sim import Event

        ev = Event(sim)
        if self.acquire(key, op_id):
            ev.succeed()
        else:
            self._queues.setdefault(key, deque()).append((op_id, ev))
        return ev

    def release(self, key: str, op_id: Tuple) -> bool:
        """Release if held by ``op_id``; False otherwise.  Grants the next
        FIFO waiter, if any."""
        if self._owners.get(key) == op_id:
            del self._owners[key]
            self._grant_next(key)
            return True
        return False

    def _grant_next(self, key: str) -> None:
        queue = self._queues.get(key)
        while queue:
            next_op, ev = queue.popleft()
            if ev.triggered:
                continue
            self._owners[key] = next_op
            ev.succeed()
            break
        if queue is not None and not queue:
            del self._queues[key]

    def cancel(self, key: str, op_id: Tuple) -> None:
        """Withdraw a queued (not yet granted) request."""
        queue = self._queues.get(key)
        if not queue:
            return
        remaining = deque((op, ev) for op, ev in queue if op != op_id)
        if remaining:
            self._queues[key] = remaining
        else:
            del self._queues[key]

    def force_release(self, key: str) -> None:
        """Administrative unlock (failover reconciliation)."""
        if key in self._owners:
            del self._owners[key]
            self._grant_next(key)

    def holder(self, key: str) -> Optional[Tuple]:
        return self._owners.get(key)

    def is_locked(self, key: str) -> bool:
        return key in self._owners

    def locked_keys(self) -> List[str]:
        return list(self._owners)

    def clear(self) -> None:
        """Node crash: in-memory locks vanish (§4.4 complete-failure case)."""
        self._owners.clear()
        self._queues.clear()

    def queued(self, key: str) -> int:
        return len(self._queues.get(key, ()))

    def __len__(self) -> int:
        return len(self._owners)
