"""Versioned in-memory object index backed by the simulated disk.

A storage node's data set: object name → latest committed version.  The
handoff role (§4.4) keeps its temporarily-stored objects in a *separate
namespace* ("the handoff node stores the newly stored objects in a separate
directory") so recovery can enumerate exactly what the failed node missed.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from .timestamps import PutStamp

__all__ = ["StoredObject", "ObjectStore", "object_checksum"]


def object_checksum(name: str, value: object) -> int:
    """Content checksum stored alongside each object (DESIGN.md §5k);
    bit-rot is any stored value that no longer matches it."""
    return zlib.crc32(repr((name, value)).encode("utf-8", "replace")) & 0xFFFFFFFF


@dataclass
class StoredObject:
    """One committed object version."""

    name: str
    value: object
    size_bytes: int
    stamp: Optional[PutStamp]
    #: Computed at construction; never recomputed on mutation, so a
    #: corrupted value is detectable by :meth:`ObjectStore.verify`.
    checksum: int = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.checksum is None:
            self.checksum = object_checksum(self.name, self.value)

    def newer_than(self, other: Optional["StoredObject"]) -> bool:
        if other is None or other.stamp is None:
            return True
        if self.stamp is None:
            return False
        return self.stamp > other.stamp


class ObjectStore:
    """Name → object map with a separate handoff namespace."""

    def __init__(self) -> None:
        self._objects: Dict[str, StoredObject] = {}
        self._handoff: Dict[str, StoredObject] = {}
        self.corruptions = 0

    # -- primary namespace -----------------------------------------------------
    def put(self, obj: StoredObject) -> None:
        """Commit ``obj`` if it is newer than what we hold (idempotent
        against client retries, which reuse the client timestamp)."""
        current = self._objects.get(obj.name)
        if current is None or obj.newer_than(current):
            self._objects[obj.name] = obj

    def get(self, name: str) -> Optional[StoredObject]:
        return self._objects.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def names(self) -> List[str]:
        return list(self._objects)

    def objects(self) -> Iterable[StoredObject]:
        return self._objects.values()

    def total_bytes(self) -> int:
        return sum(o.size_bytes for o in self._objects.values())

    def drop(self, name: str) -> None:
        self._objects.pop(name, None)

    def clear(self) -> None:
        self._objects.clear()

    # -- integrity (§5k) -------------------------------------------------------
    @staticmethod
    def verify(obj: StoredObject) -> bool:
        """Whether ``obj``'s bytes still match its stored checksum."""
        return obj.checksum == object_checksum(obj.name, obj.value)

    def corrupt(self, name: str) -> bool:
        """Inject bit-rot: silently damage the stored value without
        touching the checksum (the chaos ``disk_corrupt`` fault)."""
        obj = self._objects.get(name)
        if obj is None:
            return False
        obj.value = ("\x00bitrot", obj.value)
        self.corruptions += 1
        return True

    def repair(self, obj: StoredObject) -> None:
        """Replace a damaged version with a verified replica copy —
        unconditional, unlike :meth:`put` (same stamp, so ``newer_than``
        would refuse)."""
        self._objects[obj.name] = obj

    # -- handoff namespace --------------------------------------------------------
    def put_handoff(self, obj: StoredObject) -> None:
        current = self._handoff.get(obj.name)
        if current is None or obj.newer_than(current):
            self._handoff[obj.name] = obj

    def get_handoff(self, name: str) -> Optional[StoredObject]:
        return self._handoff.get(name)

    def handoff_objects(self) -> List[StoredObject]:
        return list(self._handoff.values())

    def drop_handoff(self, name: str) -> None:
        self._handoff.pop(name, None)

    def handoff_count(self) -> int:
        return len(self._handoff)

    def clear_handoff(self) -> None:
        self._handoff.clear()
