"""Simulated persistent storage device.

Models an SSD (the testbed nodes have 120 GB SSDs, §6) as a capacity-1
resource with per-op base latency plus byte-rate service time.  *Forced*
writes (the gray boxes of Fig 3 — log appends and object writes that must
be durable before acknowledging) additionally wait for a flush.

Flushes are *group-committed*: concurrent forced writes share one flush
cycle, as real write-ahead logs do — a lone put still pays the full flush
latency, but a node absorbing hundreds of concurrent puts is not
flush-count-bound.

Crash consistency (DESIGN.md §5k): completed writes land in a modeled
volatile cache first.  Every write is issued a monotonically increasing
sequence number; a flush cycle advances the *durability barrier*
``durable_seq`` to the highest sequence whose transfer had completed
before the cycle started (the capacity-1 FIFO device guarantees writes
complete in issue order).  ``dirty_bytes`` tracks the unflushed window.
``crash()`` models power loss: everything above the barrier is gone.
A *process* crash, by contrast, does not touch the disk at all — the
write cache is below the failing software, exactly as an OS page cache
survives an application crash.

The epoch guard keeps chaos runs bit-reproducible: in-flight IO and
flush cycles continue on their original timeline across a crash (their
events fire exactly when they would have), but completions from a
pre-crash epoch no longer advance the post-crash durability state.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from ..sim import Counter, Event, Resource, Simulator

__all__ = ["Disk"]


class Disk:
    """One node's storage device; all IO serializes through it."""

    def __init__(
        self,
        sim: Simulator,
        write_bandwidth_bps: float = 400e6 * 8,
        read_bandwidth_bps: float = 900e6 * 8,
        base_latency_s: float = 60e-6,
        flush_latency_s: float = 300e-6,
        name: str = "disk",
    ):
        if write_bandwidth_bps <= 0 or read_bandwidth_bps <= 0:
            raise ValueError("disk bandwidth must be positive")
        self.sim = sim
        self.name = name
        self.write_bandwidth_bps = write_bandwidth_bps
        self.read_bandwidth_bps = read_bandwidth_bps
        self.base_latency_s = base_latency_s
        self.flush_latency_s = flush_latency_s
        #: Factory parameters; ``set_degraded`` scales away from these and
        #: the fail-slow health signal is measured against them.
        self._nominal = (write_bandwidth_bps, read_bandwidth_bps, base_latency_s)
        self.degraded_factor = 1.0
        self._device = Resource(sim, capacity=1, name=f"{name}.device")
        self._flush_waiters: List[Event] = []
        self._flusher_running = False
        # -- durability state (§5k) ------------------------------------
        self._epoch = 0
        self._issued_seq = 0
        self._completed_seq = 0
        #: Highest write sequence covered by a completed flush; writes at
        #: or below the barrier survive power loss.
        self.durable_seq = 0
        self.dirty_bytes = 0
        self._dirty: Deque[Tuple[int, int]] = deque()
        # -- fail-slow health signal -----------------------------------
        self._ratio_sum = 0.0
        self._ratio_n = 0
        #: Flush-cycle clock for cache-resident metadata (WAL removals):
        #: an update made at time T is durable once a cycle that *started*
        #: after T completes — ``done > started_at_T``.
        self.flush_cycles_started = 0
        self.flush_cycles_done = 0
        self.bytes_written = Counter(f"{name}.bytes_written")
        self.bytes_read = Counter(f"{name}.bytes_read")
        self.writes = Counter(f"{name}.writes")
        self.reads = Counter(f"{name}.reads")
        self.flushes = Counter(f"{name}.flushes")
        self.power_losses = Counter(f"{name}.power_losses")

    @property
    def issued_seq(self) -> int:
        """Sequence number of the most recently issued write.  Read this
        immediately after ``write()`` returns to tag the write."""
        return self._issued_seq

    def is_durable(self, seq: int) -> bool:
        """Whether write ``seq`` has been covered by a flush.  Only
        meaningful for sequences issued in the current power epoch."""
        return seq <= self.durable_seq

    def write(self, nbytes: int, forced: bool = False) -> Event:
        """Persist ``nbytes``; returns a Process to ``yield`` on."""
        if nbytes < 0:
            raise ValueError(f"negative write size: {nbytes}")
        self._issued_seq += 1
        return self.sim.process(
            self._io(nbytes, forced, True, self._issued_seq, self._epoch)
        )

    def read(self, nbytes: int) -> Event:
        if nbytes < 0:
            raise ValueError(f"negative read size: {nbytes}")
        return self.sim.process(self._io(nbytes, False, False, 0, self._epoch))

    def _io(self, nbytes: int, forced: bool, write: bool, seq: int, epoch: int):
        req = self._device.request()
        yield req
        try:
            bw = self.write_bandwidth_bps if write else self.read_bandwidth_bps
            service = self.base_latency_s + nbytes * 8.0 / bw
            yield self.sim.timeout(service)
            if write:
                self.bytes_written.add(nbytes)
                self.writes.add()
            else:
                self.bytes_read.add(nbytes)
                self.reads.add()
            # Health signal: observed service time over the factory-spec
            # expectation for the same transfer (queueing excluded, so a
            # degraded device reads as exactly its slowdown factor).
            nom_w, nom_r, nom_base = self._nominal
            expected = nom_base + nbytes * 8.0 / (nom_w if write else nom_r)
            if expected > 0.0:  # zero-cost transfers carry no signal
                self._ratio_sum += service / expected
                self._ratio_n += 1
            if write and epoch == self._epoch:
                self._completed_seq = seq
                self._dirty.append((seq, nbytes))
                self.dirty_bytes += nbytes
        finally:
            req.release()
        if forced:
            # Group commit: join the next flush cycle.
            done = Event(self.sim)
            self._flush_waiters.append(done)
            if not self._flusher_running:
                self._flusher_running = True
                self.sim.process(self._flusher())
            yield done

    def _flusher(self):
        """Back-to-back flush cycles while demand exists; each cycle covers
        every write that finished its transfer before the cycle started."""
        while self._flush_waiters:
            covered, self._flush_waiters = self._flush_waiters, []
            epoch, barrier = self._epoch, self._completed_seq
            self.flush_cycles_started += 1
            yield self.sim.timeout(self.flush_latency_s)
            self.flushes.add()
            if epoch == self._epoch:
                self._advance_barrier(barrier)
                self.flush_cycles_done += 1
            for ev in covered:
                ev.succeed()
        self._flusher_running = False

    def _advance_barrier(self, barrier: int):
        if barrier <= self.durable_seq:
            return
        self.durable_seq = barrier
        dirty = self._dirty
        while dirty and dirty[0][0] <= barrier:
            self.dirty_bytes -= dirty.popleft()[1]

    def crash(self) -> int:
        """Power loss: the volatile write cache is discarded.  Returns the
        durability barrier — everything issued above it never reached the
        platter.  In-flight IO and flush cycles keep their original
        timeline (their waiters fire on schedule; the resumed processes
        observe the dead host and bail), but pre-crash completions no
        longer advance post-crash durability state."""
        self._epoch += 1
        self._dirty.clear()
        self.dirty_bytes = 0
        self._completed_seq = self.durable_seq
        self._ratio_sum = 0.0
        self._ratio_n = 0
        self.power_losses.add()
        return self.durable_seq

    # -- fail-slow -----------------------------------------------------
    def set_degraded(self, factor: float = 1.0) -> None:
        """Scale service times by ``factor`` (the chaos ``disk_slow``
        knob); ``factor <= 1`` restores the factory parameters."""
        factor = max(1.0, float(factor))
        nom_w, nom_r, nom_base = self._nominal
        self.degraded_factor = factor
        self.write_bandwidth_bps = nom_w / factor
        self.read_bandwidth_bps = nom_r / factor
        self.base_latency_s = nom_base * factor

    def consume_service_ratio(self) -> Optional[float]:
        """Mean observed/nominal service-time ratio since the last call
        (the heartbeat-driven fail-slow detector's input), or ``None``
        when no IO completed in the window."""
        if self._ratio_n == 0:
            return None
        ratio = self._ratio_sum / self._ratio_n
        self._ratio_sum = 0.0
        self._ratio_n = 0
        return ratio
