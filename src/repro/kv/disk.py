"""Simulated persistent storage device.

Models an SSD (the testbed nodes have 120 GB SSDs, §6) as a capacity-1
resource with per-op base latency plus byte-rate service time.  *Forced*
writes (the gray boxes of Fig 3 — log appends and object writes that must
be durable before acknowledging) additionally wait for a flush.

Flushes are *group-committed*: concurrent forced writes share one flush
cycle, as real write-ahead logs do — a lone put still pays the full flush
latency, but a node absorbing hundreds of concurrent puts is not
flush-count-bound.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim import Counter, Event, Resource, Simulator

__all__ = ["Disk"]


class Disk:
    """One node's storage device; all IO serializes through it."""

    def __init__(
        self,
        sim: Simulator,
        write_bandwidth_bps: float = 400e6 * 8,
        read_bandwidth_bps: float = 900e6 * 8,
        base_latency_s: float = 60e-6,
        flush_latency_s: float = 300e-6,
        name: str = "disk",
    ):
        if write_bandwidth_bps <= 0 or read_bandwidth_bps <= 0:
            raise ValueError("disk bandwidth must be positive")
        self.sim = sim
        self.name = name
        self.write_bandwidth_bps = write_bandwidth_bps
        self.read_bandwidth_bps = read_bandwidth_bps
        self.base_latency_s = base_latency_s
        self.flush_latency_s = flush_latency_s
        self._device = Resource(sim, capacity=1, name=f"{name}.device")
        self._flush_waiters: List[Event] = []
        self._flusher_running = False
        self.bytes_written = Counter(f"{name}.bytes_written")
        self.bytes_read = Counter(f"{name}.bytes_read")
        self.writes = Counter(f"{name}.writes")
        self.reads = Counter(f"{name}.reads")
        self.flushes = Counter(f"{name}.flushes")

    def write(self, nbytes: int, forced: bool = False) -> Event:
        """Persist ``nbytes``; returns a Process to ``yield`` on."""
        if nbytes < 0:
            raise ValueError(f"negative write size: {nbytes}")
        return self.sim.process(self._io(nbytes, forced, write=True))

    def read(self, nbytes: int) -> Event:
        if nbytes < 0:
            raise ValueError(f"negative read size: {nbytes}")
        return self.sim.process(self._io(nbytes, False, write=False))

    def _io(self, nbytes: int, forced: bool, write: bool):
        req = self._device.request()
        yield req
        try:
            bw = self.write_bandwidth_bps if write else self.read_bandwidth_bps
            yield self.sim.timeout(self.base_latency_s + nbytes * 8.0 / bw)
            if write:
                self.bytes_written.add(nbytes)
                self.writes.add()
            else:
                self.bytes_read.add(nbytes)
                self.reads.add()
        finally:
            req.release()
        if forced:
            # Group commit: join the next flush cycle.
            done = Event(self.sim)
            self._flush_waiters.append(done)
            if not self._flusher_running:
                self._flusher_running = True
                self.sim.process(self._flusher())
            yield done

    def _flusher(self):
        """Back-to-back flush cycles while demand exists; each cycle covers
        every write that finished its transfer before the cycle started."""
        while self._flush_waiters:
            covered, self._flush_waiters = self._flush_waiters, []
            yield self.sim.timeout(self.flush_latency_s)
            self.flushes.add()
            for ev in covered:
                ev.succeed()
        self._flusher_running = False
