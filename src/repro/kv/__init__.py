"""KV storage engine substrate: consistent hashing, object store, disk,
write-ahead log, locks and put timestamps."""

from .disk import Disk
from .hashring import RING_BITS, RING_SIZE, ConsistentHashRing, key_hash
from .locks import LockTable
from .store import ObjectStore, StoredObject
from .timestamps import PutStamp
from .wal import LogRecord, WriteAheadLog

__all__ = [
    "ConsistentHashRing",
    "Disk",
    "LockTable",
    "LogRecord",
    "ObjectStore",
    "PutStamp",
    "RING_BITS",
    "RING_SIZE",
    "StoredObject",
    "WriteAheadLog",
    "key_hash",
]
