"""KV storage engine substrate: consistent hashing, object store, disk,
write-ahead log, locks and put timestamps."""

from .disk import Disk
from .hashring import RING_BITS, RING_SIZE, ConsistentHashRing, key_hash
from .locks import LockTable
from .store import ObjectStore, StoredObject, object_checksum
from .timestamps import PutStamp
from .wal import LogRecord, WriteAheadLog, decode_log, encode_record

__all__ = [
    "ConsistentHashRing",
    "Disk",
    "LockTable",
    "LogRecord",
    "ObjectStore",
    "PutStamp",
    "RING_BITS",
    "RING_SIZE",
    "StoredObject",
    "WriteAheadLog",
    "decode_log",
    "encode_record",
    "key_hash",
    "object_checksum",
]
