"""Consistent hashing (Karger et al. [25]) — the object-space partitioner.

Both NICE and NOOB place storage nodes on a hash ring (§3.1): every node is
the primary replica for the arc it owns, and the R−1 ring successors are
the secondaries.  Keys hash onto the same circle.

The ring also exposes *partition index* helpers: NICE's virtual rings are
divided into power-of-two subgroups, and each subgroup index maps onto the
ring the same way a key does, keeping client-side vnode selection and
metadata-service placement consistent.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["key_hash", "ConsistentHashRing", "RING_BITS", "RING_SIZE"]

#: The hash circle is [0, 2**32).
RING_BITS = 32
RING_SIZE = 1 << RING_BITS


def key_hash(name: str) -> int:
    """Position of an object name on the hash circle (deterministic)."""
    digest = hashlib.sha256(name.encode()).digest()
    return int.from_bytes(digest[:4], "big")


class ConsistentHashRing:
    """Nodes on a circle, each possibly at several virtual points.

    ``points_per_node`` > 1 smooths arc sizes (the classic virtual-node
    trick, [40]); node identity is whatever hashable the caller supplies.
    """

    def __init__(self, points_per_node: int = 1):
        if points_per_node < 1:
            raise ValueError(f"points_per_node must be >= 1: {points_per_node}")
        self.points_per_node = points_per_node
        self._points: List[int] = []  # sorted positions
        self._owners: Dict[int, object] = {}  # position -> node id
        self._nodes: Dict[object, List[int]] = {}

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: object) -> bool:
        return node_id in self._nodes

    @property
    def nodes(self) -> Tuple:
        return tuple(self._nodes)

    @staticmethod
    def _position(node_id: object, replica: int) -> int:
        digest = hashlib.sha256(f"{node_id}#{replica}".encode()).digest()
        return int.from_bytes(digest[:4], "big")

    def add_node(self, node_id: object) -> None:
        if node_id in self._nodes:
            raise ValueError(f"node {node_id!r} already on the ring")
        positions = []
        for i in range(self.points_per_node):
            pos = self._position(node_id, i)
            while pos in self._owners:  # extremely unlikely collision
                pos = (pos + 1) % RING_SIZE
            self._owners[pos] = node_id
            bisect.insort(self._points, pos)
            positions.append(pos)
        self._nodes[node_id] = positions

    def remove_node(self, node_id: object) -> None:
        positions = self._nodes.pop(node_id, None)
        if positions is None:
            raise KeyError(f"node {node_id!r} not on the ring")
        for pos in positions:
            del self._owners[pos]
            idx = bisect.bisect_left(self._points, pos)
            del self._points[idx]

    # -- lookups ------------------------------------------------------------
    def successor(self, point: int) -> object:
        """The node owning ``point`` (first ring point at or after it)."""
        if not self._points:
            raise LookupError("empty ring")
        idx = bisect.bisect_left(self._points, point % RING_SIZE)
        if idx == len(self._points):
            idx = 0
        return self._owners[self._points[idx]]

    def successors(self, point: int, k: int) -> List[object]:
        """The first ``k`` *distinct* nodes clockwise from ``point``.

        This is the replica set: element 0 is the primary (§3.1).
        """
        if k < 1:
            raise ValueError(f"k must be >= 1: {k}")
        if k > len(self._nodes):
            raise ValueError(f"asked for {k} distinct nodes, ring has {len(self._nodes)}")
        result: List[object] = []
        idx = bisect.bisect_left(self._points, point % RING_SIZE)
        n = len(self._points)
        for step in range(n):
            owner = self._owners[self._points[(idx + step) % n]]
            if owner not in result:
                result.append(owner)
                if len(result) == k:
                    break
        return result

    def node_for_key(self, name: str) -> object:
        return self.successor(key_hash(name))

    def replicas_for_key(self, name: str, r: int) -> List[object]:
        return self.successors(key_hash(name), r)

    # -- partition helpers ---------------------------------------------------
    @staticmethod
    def partition_point(partition: int, n_partitions: int) -> int:
        """Ring position of partition ``partition`` of ``n_partitions``
        equal arcs (used to place vring subgroups onto the ring)."""
        if not 0 <= partition < n_partitions:
            raise ValueError(f"partition {partition} out of range 0..{n_partitions - 1}")
        return (partition * RING_SIZE) // n_partitions

    @staticmethod
    def partition_of_hash(h: int, n_partitions: int) -> int:
        """Which of ``n_partitions`` equal arcs contains hash ``h``."""
        return (h % RING_SIZE) * n_partitions // RING_SIZE

    def arc_sizes(self) -> Dict[object, int]:
        """Hash-space span owned by each node (load-balance diagnostics)."""
        if not self._points:
            return {}
        sizes: Dict[object, int] = {node: 0 for node in self._nodes}
        for i, pos in enumerate(self._points):
            prev = self._points[i - 1]
            span = (pos - prev) % RING_SIZE if i else (pos - self._points[-1]) % RING_SIZE
            sizes[self._owners[pos]] += span
        return sizes
