"""Write-ahead operation log.

Fig 3's ``+L``/``−L`` markers: a replica *forces* a log record before
writing the object (gray box = durable), and deletes the record once the
operation commits.  After a complete cluster failure "the persistent logs
on the nodes will identify the latest put operations" (§4.4) — hence
:meth:`replay`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..sim import Event
from .disk import Disk
from .timestamps import PutStamp

__all__ = ["LogRecord", "WriteAheadLog"]

#: Serialized size of one log record on disk (op id, key, stamp, lengths).
RECORD_BYTES = 256


@dataclass
class LogRecord:
    """One in-flight put operation.

    The record carries the object payload (real logs write the data or a
    pointer to the staged object): after a complete cluster failure the
    reconciliation can commit straight from the log (§4.4).
    """

    op_id: Tuple
    key: str
    size_bytes: int
    client_addr: str
    client_ts: float
    value: object = None
    client_port: int = 0
    partition: int = -1
    committed: bool = False
    stamp: Optional[PutStamp] = None


class WriteAheadLog:
    """Per-node durable operation log (backed by the node's disk)."""

    def __init__(self, disk: Disk):
        self.disk = disk
        self._records: Dict[Tuple, LogRecord] = {}
        self.appended = 0
        self.removed = 0

    def append(self, record: LogRecord) -> Event:
        """Durably append (+L, forced write); returns a Process to yield on."""
        self._records[record.op_id] = record
        self.appended += 1
        return self.disk.write(RECORD_BYTES, forced=True)

    def mark_committed(self, op_id: Tuple, stamp: PutStamp) -> None:
        """Record the commit stamp (in-place update before removal)."""
        rec = self._records.get(op_id)
        if rec is not None:
            rec.committed = True
            rec.stamp = stamp

    def remove(self, op_id: Tuple) -> None:
        """Delete the record (−L): cheap, not forced (Fig 3 shows −L white)."""
        if self._records.pop(op_id, None) is not None:
            self.removed += 1

    def get(self, op_id: Tuple) -> Optional[LogRecord]:
        return self._records.get(op_id)

    def __len__(self) -> int:
        return len(self._records)

    def pending(self) -> List[LogRecord]:
        """Uncommitted records (crash-recovery reconciliation input)."""
        return [r for r in self._records.values() if not r.committed]

    def replay(self) -> List[LogRecord]:
        """All surviving records, oldest first — §4.4's complete-cluster-
        failure path feeds these to the new primary's lock rules."""
        return list(self._records.values())
