"""Write-ahead operation log.

Fig 3's ``+L``/``−L`` markers: a replica *forces* a log record before
writing the object (gray box = durable), and deletes the record once the
operation commits.  After a complete cluster failure "the persistent logs
on the nodes will identify the latest put operations" (§4.4) — hence
:meth:`replay`.

Crash consistency (DESIGN.md §5k): alongside the in-memory record map the
log keeps a *journal* — the byte-exact frame each append wrote to disk,
tagged with the disk write's sequence number.  A frame is an 8-byte
header (big-endian body length + CRC32 of the body) followed by the
pickled record fields.  On power loss (:meth:`power_loss`) the journal is
replayed against the disk's durability barrier to reconstruct exactly
what the platter holds:

* appends at or below the barrier survive; the oldest one above it is
  *torn* — its frame is cut at a deterministic mid-frame offset and the
  CRC check truncates it away (never a phantom or corrupt record);
* ``remove`` (−L) is not forced: the deletion is a cache-resident
  metadata update, durable only once a flush cycle that *started after*
  the removal completes — a crash before that resurrects the record
  from the durable image;
* ``mark_committed`` updates the journal frame *in place*: we model the
  commit decision as an in-place update to the already-durable
  value-carrying record, so a record whose append was flushed carries
  its commit bit across power loss (the optimistic durable commit bit —
  see §5k for why Fig 3's white −L/commit boxes force this choice).

:func:`encode_record` / :func:`decode_log` are pure functions shared by
the in-simulator crash path and the torn-tail property tests.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..sim import Event
from .disk import Disk
from .timestamps import PutStamp

__all__ = [
    "LogRecord",
    "WriteAheadLog",
    "encode_record",
    "decode_log",
]

#: Serialized size of one log record on disk (op id, key, stamp, lengths).
RECORD_BYTES = 256

#: Frame header: body length, CRC32 of the body.
_HEADER = struct.Struct(">II")


@dataclass
class LogRecord:
    """One in-flight put operation.

    The record carries the object payload (real logs write the data or a
    pointer to the staged object): after a complete cluster failure the
    reconciliation can commit straight from the log (§4.4).
    """

    op_id: Tuple
    key: str
    size_bytes: int
    client_addr: str
    client_ts: float
    value: object = None
    client_port: int = 0
    partition: int = -1
    committed: bool = False
    stamp: Optional[PutStamp] = None


def encode_record(record: LogRecord) -> bytes:
    """One checksummed on-disk frame for ``record``."""
    stamp = record.stamp
    body = pickle.dumps(
        (
            record.op_id,
            record.key,
            record.size_bytes,
            record.client_addr,
            record.client_ts,
            record.value,
            record.client_port,
            record.partition,
            record.committed,
            None
            if stamp is None
            else (stamp.primary_addr, stamp.primary_ts, stamp.client_addr, stamp.client_ts),
        ),
        protocol=4,
    )
    return _HEADER.pack(len(body), zlib.crc32(body) & 0xFFFFFFFF) + body


def decode_log(image: bytes) -> Tuple[List[LogRecord], bool]:
    """Parse a log image into ``(records, torn)``.

    Frames decode in order until the image is exhausted or a frame fails
    validation (short header, short body, or CRC mismatch) — everything
    from the first bad frame on is the torn tail and is truncated.  A
    record is only ever emitted from a complete, checksum-verified frame,
    so truncation at any byte offset cannot fabricate or corrupt one.
    """
    records: List[LogRecord] = []
    offset, size = 0, len(image)
    while offset < size:
        if offset + _HEADER.size > size:
            return records, True
        length, crc = _HEADER.unpack_from(image, offset)
        body = image[offset + _HEADER.size : offset + _HEADER.size + length]
        if len(body) < length or (zlib.crc32(body) & 0xFFFFFFFF) != crc:
            return records, True
        fields = pickle.loads(body)
        stamp = fields[9]
        records.append(
            LogRecord(
                *fields[:9],
                stamp=None if stamp is None else PutStamp(*stamp),
            )
        )
        offset += _HEADER.size + length
    return records, False


class _JournalEntry:
    """Bookkeeping for one append: its disk write sequence, the frame it
    wrote, and (once −L ran) the disk's flush-cycle count at removal."""

    __slots__ = ("seq", "frame", "removed_cycle")

    def __init__(self, seq: int, frame: bytes):
        self.seq = seq
        self.frame = frame
        self.removed_cycle: Optional[int] = None


class WriteAheadLog:
    """Per-node durable operation log (backed by the node's disk)."""

    def __init__(self, disk: Disk, forced: bool = True):
        self.disk = disk
        #: False models the deliberately-weakened ``wal=off`` variant:
        #: appends skip the flush, so a put acks before its record is
        #: durable — the chaos matrix must catch this.
        self.forced = forced
        self._records: Dict[Tuple, LogRecord] = {}
        #: op id → journal entry, in append order (insertion-ordered).
        self._journal: Dict[Tuple, _JournalEntry] = {}
        self.appended = 0
        self.removed = 0
        self.torn_records = 0
        self.lost_records = 0
        self.resurrected_records = 0

    def append(self, record: LogRecord) -> Event:
        """Durably append (+L, forced write); returns a Process to yield on."""
        self._records[record.op_id] = record
        self.appended += 1
        done = self.disk.write(RECORD_BYTES, forced=self.forced)
        self._journal[record.op_id] = _JournalEntry(
            self.disk.issued_seq, encode_record(record)
        )
        return done

    def mark_committed(self, op_id: Tuple, stamp: PutStamp) -> None:
        """Record the commit stamp (in-place update before removal)."""
        rec = self._records.get(op_id)
        if rec is not None:
            rec.committed = True
            rec.stamp = stamp
            entry = self._journal.get(op_id)
            if entry is not None:
                entry.frame = encode_record(rec)

    def remove(self, op_id: Tuple) -> None:
        """Delete the record (−L): cheap, not forced (Fig 3 shows −L white)."""
        if self._records.pop(op_id, None) is not None:
            self.removed += 1
        entry = self._journal.get(op_id)
        if entry is not None and entry.removed_cycle is None:
            # The deletion is cache-resident: it reaches the platter with
            # the first flush cycle that starts after this moment; until
            # such a cycle completes, a power loss resurrects the record.
            entry.removed_cycle = self.disk.flush_cycles_started
            self._gc()

    def _removal_durable(self, entry: _JournalEntry) -> bool:
        # Cycles complete in start order, so once more cycles have
        # completed than had started at removal time, at least one of
        # them began after the removal and carried the deletion down.
        return (
            entry.removed_cycle is not None
            and self.disk.flush_cycles_done > entry.removed_cycle
        )

    def _gc(self) -> None:
        """Drop journal entries whose removal is durable."""
        dead = [
            op_id
            for op_id, e in self._journal.items()
            if self._removal_durable(e)
        ]
        for op_id in dead:
            del self._journal[op_id]

    def unflushed_appends(self) -> int:
        """Live appends above the disk's durability barrier — the records
        a power loss right now would tear or lose."""
        barrier = self.disk.durable_seq
        return sum(
            1
            for e in self._journal.values()
            if e.removed_cycle is None and e.seq > barrier
        )

    def get(self, op_id: Tuple) -> Optional[LogRecord]:
        return self._records.get(op_id)

    def __len__(self) -> int:
        return len(self._records)

    def pending(self) -> List[LogRecord]:
        """Uncommitted records (crash-recovery reconciliation input)."""
        return [r for r in self._records.values() if not r.committed]

    def replay(self) -> List[LogRecord]:
        """All surviving records, oldest first — §4.4's complete-cluster-
        failure path feeds these to the new primary's lock rules."""
        return list(self._records.values())

    # -- power loss ----------------------------------------------------
    def power_loss(self) -> bool:
        """Rebuild the log to exactly what the platter holds.

        Call *after* ``disk.crash()``.  Assembles the durable log image
        — surviving appends minus durable removals, with the oldest
        unflushed append cut mid-frame — and decodes it through the same
        :func:`decode_log` the property tests exercise.  Returns whether
        a torn tail was detected (and truncated)."""
        barrier = self.disk.durable_seq
        image = bytearray()
        lost = 0
        torn_entry: Optional[_JournalEntry] = None
        for entry in self._journal.values():
            if entry.seq <= barrier:
                if self._removal_durable(entry):
                    continue  # durably removed
                image += entry.frame
            elif torn_entry is None:
                torn_entry = entry  # oldest unflushed append: torn tail
            else:
                lost += 1  # later unflushed appends: wholly gone
        if torn_entry is not None:
            # Cut at a deterministic mid-frame offset derived from the
            # write sequence (Fibonacci hashing keeps it well spread).
            frame = torn_entry.frame
            cut = 1 + (torn_entry.seq * 2654435761) % (len(frame) - 1)
            image += frame[:cut]
        records, torn = decode_log(bytes(image))
        resurrected = sum(1 for r in records if r.op_id not in self._records)
        self._records = {r.op_id: r for r in records}
        journal: Dict[Tuple, _JournalEntry] = {}
        for rec in records:
            old = self._journal[rec.op_id]
            journal[rec.op_id] = _JournalEntry(old.seq, encode_record(rec))
        self._journal = journal
        self.torn_records += int(torn)
        self.lost_records += lost
        self.resurrected_records += resurrected
        return torn
