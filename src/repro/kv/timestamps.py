"""Put-operation timestamps (§4.3).

The primary generates a commit stamp containing "the following quadruplet:
primary address, primary timestamp, client address, and client timestamp".
The quadruplet totally orders puts to the same object — including retries
of the same put by the same client, which carry the same (client address,
client timestamp) pair and therefore commit idempotently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["PutStamp"]


@dataclass(frozen=True, order=False)
class PutStamp:
    """Commit order token; compares by (primary_ts, primary, client, client_ts)."""

    primary_addr: str
    primary_ts: float
    client_addr: str
    client_ts: float

    def _key(self) -> Tuple:
        return (self.primary_ts, self.primary_addr, self.client_addr, self.client_ts)

    def __lt__(self, other: "PutStamp") -> bool:
        return self._key() < other._key()

    def __le__(self, other: "PutStamp") -> bool:
        return self._key() <= other._key()

    def __gt__(self, other: "PutStamp") -> bool:
        return self._key() > other._key()

    def __ge__(self, other: "PutStamp") -> bool:
        return self._key() >= other._key()

    def same_client_attempt(self, other: "PutStamp") -> bool:
        """True when both stamps describe the same client put (a retry)."""
        return (
            self.client_addr == other.client_addr and self.client_ts == other.client_ts
        )
